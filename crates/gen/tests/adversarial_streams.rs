//! Properties of the adversarial churn generators.
//!
//! 1. **Batch validity under fold**: every window each scenario emits,
//!    applied in sequence to a [`DynamicGraph`], passes the strict
//!    [`EditBatch::validate`] contract — no insertion of a live edge, no
//!    deletion of an absent one, no self-loops. The serve loop tolerates
//!    invalid ops (it net-resolves), but the generators *promise* clean
//!    streams so bench runs measure churn, not rejection overhead.
//! 2. **Determinism pin**: replaying the same seed yields bit-identical
//!    edit streams and truth tracks — the property every cross-engine /
//!    cross-shard bit-identity test in `rslpa_serve` leans on.

use proptest::prelude::*;
use rslpa_gen::{named_scenarios, ChurnScenario, GroundTruthTrack};
use rslpa_graph::{DynamicGraph, EditBatch, FxHashSet};

/// Windows to fold per scenario: enough for every scenario to hit its
/// interesting regime (splits toggling, cascade crossing a community
/// boundary, a burst period) while staying proptest-cheap.
const WINDOWS: usize = 6;

/// Fold `windows` windows into a `DynamicGraph`, asserting strict batch
/// validity at every step; returns the edit stream and the truth track.
fn fold_checked(
    scenario: &mut dyn ChurnScenario,
    windows: usize,
) -> (DynamicGraph, Vec<EditBatch>, GroundTruthTrack) {
    let (seed_graph, truth0) = scenario.seed_graph();
    let mut g = DynamicGraph::new(seed_graph);
    let mut track = GroundTruthTrack::seeded(truth0);
    let mut stream = Vec::with_capacity(windows);
    for w in 0..windows {
        let window = scenario.next_window(g.graph());
        // Inside one batch, no edge may appear twice (the strict contract
        // rejects intra-batch duplicates only across lists; pin both).
        let mut seen = FxHashSet::default();
        for &(u, v) in window
            .batch
            .insertions()
            .iter()
            .chain(window.batch.deletions())
        {
            assert_ne!(u, v, "{} window {w}: self-loop", scenario.name());
            assert!(
                seen.insert((u.min(v), u.max(v))),
                "{} window {w}: duplicate edge ({u},{v}) within a batch",
                scenario.name()
            );
        }
        // Grow the id space for fresh-vertex insertions (SkewBurst), then
        // hold the generator to the strict validity contract.
        if let Some(m) = window
            .batch
            .insertions()
            .iter()
            .map(|&(u, v)| u.max(v))
            .max()
        {
            g.ensure_vertices((m as usize + 1).max(g.graph().num_vertices()));
        }
        for &(u, v) in window.batch.insertions() {
            assert!(
                !g.graph().has_edge(u, v),
                "{} window {w}: inserts live edge ({u},{v})",
                scenario.name()
            );
        }
        for &(u, v) in window.batch.deletions() {
            assert!(
                g.graph().has_edge(u, v),
                "{} window {w}: deletes absent edge ({u},{v})",
                scenario.name()
            );
        }
        window
            .batch
            .validate(g.graph())
            .unwrap_or_else(|e| panic!("{} window {w}: {e:?}", scenario.name()));
        g.apply(&window.batch).unwrap();
        stream.push(window.batch);
        track.push(window.truth);
    }
    (g, stream, track)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_scenario_emits_strictly_valid_batches(seed in 0u64..u64::MAX) {
        for scenario in &mut named_scenarios(true, seed) {
            fold_checked(scenario.as_mut(), WINDOWS);
        }
    }

    #[test]
    fn same_seed_replays_bit_identically(seed in 0u64..u64::MAX) {
        let mut first = named_scenarios(true, seed);
        let mut second = named_scenarios(true, seed);
        for (a, b) in first.iter_mut().zip(second.iter_mut()) {
            prop_assert_eq!(a.name(), b.name());
            let (ga, stream_a, track_a) = fold_checked(a.as_mut(), WINDOWS);
            let (gb, stream_b, track_b) = fold_checked(b.as_mut(), WINDOWS);
            prop_assert_eq!(stream_a.len(), stream_b.len());
            for (w, (ba, bb)) in stream_a.iter().zip(&stream_b).enumerate() {
                prop_assert!(
                    ba.insertions() == bb.insertions(),
                    "{} window {} insertions diverge", a.name(), w
                );
                prop_assert!(
                    ba.deletions() == bb.deletions(),
                    "{} window {} deletions diverge", a.name(), w
                );
            }
            for w in 0..WINDOWS {
                prop_assert!(
                    track_a.cover_at(w) == track_b.cover_at(w),
                    "{} window {} truth diverges", a.name(), w
                );
            }
            prop_assert_eq!(ga.graph().num_vertices(), gb.graph().num_vertices());
            prop_assert_eq!(ga.graph().num_edges(), gb.graph().num_edges());
            let ea: Vec<_> = ga.graph().edges().collect();
            let eb: Vec<_> = gb.graph().edges().collect();
            prop_assert!(ea == eb, "{}: folded graphs diverge", a.name());
        }
    }

    #[test]
    fn different_seeds_usually_diverge(seed in 0u64..u64::MAX) {
        // Not a hard guarantee per scenario, but across the whole suite at
        // least one generator must respond to the seed — a regression to a
        // seed-blind stream would pass the determinism pin trivially.
        let mut a = named_scenarios(true, seed);
        let mut b = named_scenarios(true, seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut any_diverged = false;
        for (sa, sb) in a.iter_mut().zip(b.iter_mut()) {
            let (_, stream_a, _) = fold_checked(sa.as_mut(), 2);
            let (_, stream_b, _) = fold_checked(sb.as_mut(), 2);
            if stream_a
                .iter()
                .zip(&stream_b)
                .any(|(x, y)| x.insertions() != y.insertions() || x.deletions() != y.deletions())
            {
                any_diverged = true;
            }
        }
        prop_assert!(any_diverged, "no scenario's stream responds to the seed");
    }
}
