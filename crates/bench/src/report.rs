//! Plain-text tables matching the paper's figure/table layouts.

/// A fixed-column table printer; right-pads headers, aligns numbers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title line.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format an integer-ish count.
pub fn n0(x: u64) -> String {
    format!("{x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(vec!["1".into(), f3(0.5)]);
        t.row(vec!["100".into(), f3(12.25)]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("0.500"));
        assert!(s.contains("12.250"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "{s}");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
