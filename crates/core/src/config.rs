//! rSLPA configuration.

/// Degree-capped cascade damping: the flash-crowd containment rule.
///
/// A vertex whose degree exceeds `degree_cap` is *muted as a label
/// source*: its cascade re-sprays are suppressed (the changed slots are
/// parked in a per-vertex pending set), and a re-pick or fetch that
/// lands on one of its slots serves nothing — the listener keeps its
/// own previous value, and the slot is parked so the new record is
/// caught up later. Parked slots release at the start of later flushes
/// once the vertex's degree is back at or under the cap, at most
/// `flush_budget` receiver deliveries per hub per flush, in ascending
/// (vertex, slot) order. Both the muting rule and the release schedule
/// are pure functions of the batch sequence, so the damped fixed point
/// stays bit-identical across shard counts and exchange engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DampingConfig {
    /// Degrees strictly above this are muted as label sources.
    pub degree_cap: usize,
    /// Receiver deliveries released per unmuted hub per flush (at least
    /// one slot always releases, so pending work cannot starve).
    pub flush_budget: usize,
}

impl Default for DampingConfig {
    fn default() -> Self {
        Self {
            degree_cap: 64,
            flush_budget: 64,
        }
    }
}

/// Configuration shared by the centralized and BSP implementations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RslpaConfig {
    /// Label-propagation iterations `T`. The paper's convergence study
    /// (Fig. 7a) settles on 200 for rSLPA (vs 100 for SLPA).
    pub iterations: usize,
    /// Run-level RNG seed; every random pick is a pure function of this.
    pub seed: u64,
    /// Cascade semantics. `false` = the paper's Algorithm 2, which
    /// forwards a corrected label to all recorded receivers even when its
    /// value happens to be unchanged (this is what §IV-D's η counts).
    /// `true` = prune the cascade at value-identical updates — a correct
    /// optimization the paper doesn't apply, measured as an ablation.
    pub value_pruned_cascade: bool,
    /// Grid used by the τ1 entropy scan when evaluating *between* edge
    /// weight breakpoints is requested; `None` (default) evaluates exactly
    /// at the breakpoints, which dominates the paper's 0.001 grid.
    pub tau1_grid: Option<f64>,
    /// Degree-capped cascade damping. `None` (the default) keeps the
    /// paper's unbounded cascade; the serve path turns it on (see
    /// `ServeConfig` in `rslpa-serve`).
    pub damping: Option<DampingConfig>,
}

impl Default for RslpaConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            seed: 42,
            value_pruned_cascade: false,
            tau1_grid: None,
            damping: None,
        }
    }
}

impl RslpaConfig {
    /// Paper defaults with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Shrunk iteration count for tests.
    pub fn quick(iterations: usize, seed: u64) -> Self {
        Self {
            iterations,
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RslpaConfig::default();
        assert_eq!(c.iterations, 200);
        assert!(!c.value_pruned_cascade);
    }

    #[test]
    fn constructors() {
        assert_eq!(RslpaConfig::with_seed(7).seed, 7);
        let q = RslpaConfig::quick(10, 3);
        assert_eq!((q.iterations, q.seed), (10, 3));
        assert_eq!(q.damping, None, "damping is off everywhere by default");
    }

    #[test]
    fn damping_defaults() {
        let d = DampingConfig::default();
        assert_eq!((d.degree_cap, d.flush_budget), (64, 64));
    }
}
