//! Newman modularity.
//!
//! The paper deliberately avoids Modularity as an objective ("the most
//! widely used objective Modularity has some limitations", §II-A, citing
//! Lancichinetti & Fortunato 2011), but it remains the standard sanity
//! metric for *reporting* community quality on real graphs with no ground
//! truth — which is how the bench harness uses it.

use rslpa_graph::{AdjacencyGraph, Cover};

/// Newman modularity `Q = Σ_c [ e_c/m − (d_c/2m)² ]` of a cover treated as
/// a partition by **first membership** (overlapping vertices are counted in
/// their lowest-indexed community; uncovered vertices form singletons).
pub fn modularity(graph: &AdjacencyGraph, cover: &Cover) -> f64 {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    // Assign each vertex one community id; uncovered vertices get fresh ids.
    let memberships = cover.memberships(n);
    let mut assignment = vec![u32::MAX; n];
    let mut next = cover.len() as u32;
    for v in 0..n {
        assignment[v] = match memberships[v].first() {
            Some(&c) => c,
            None => {
                let c = next;
                next += 1;
                c
            }
        };
    }
    let num_comms = next as usize;
    let mut internal = vec![0usize; num_comms]; // edges inside community
    let mut degree_sum = vec![0usize; num_comms];
    for v in 0..n as u32 {
        degree_sum[assignment[v as usize] as usize] += graph.degree(v);
    }
    for (u, v) in graph.edges() {
        if assignment[u as usize] == assignment[v as usize] {
            internal[assignment[u as usize] as usize] += 1;
        }
    }
    let m2 = 2.0 * m as f64;
    (0..num_comms)
        .map(|c| internal[c] as f64 / m as f64 - (degree_sum[c] as f64 / m2).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cliques_bridge() {
        // Two triangles joined by one edge; the natural split has high Q.
        let g =
            AdjacencyGraph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let good = Cover::new(vec![vec![0, 1, 2], vec![3, 4, 5]]);
        let bad = Cover::new(vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
        let qg = modularity(&g, &good);
        let qb = modularity(&g, &bad);
        assert!(qg > 0.3, "good split Q = {qg}");
        assert!(qg > qb, "good {qg} vs bad {qb}");
    }

    #[test]
    fn single_community_q_is_zero() {
        let g = AdjacencyGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let all = Cover::new(vec![vec![0, 1, 2, 3]]);
        assert!(modularity(&g, &all).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_q_is_zero() {
        let g = AdjacencyGraph::new(3);
        assert_eq!(modularity(&g, &Cover::default()), 0.0);
    }

    #[test]
    fn uncovered_vertices_become_singletons() {
        let g = AdjacencyGraph::from_edges(4, [(0, 1), (2, 3)]);
        let partial = Cover::new(vec![vec![0, 1]]);
        // Vertices 2, 3 are singletons: the (2,3) edge is external.
        let q = modularity(&g, &partial);
        let full = modularity(&g, &Cover::new(vec![vec![0, 1], vec![2, 3]]));
        assert!(full > q);
    }

    #[test]
    fn q_is_bounded() {
        let g = AdjacencyGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let c = Cover::new(vec![vec![0, 1], vec![2, 3], vec![4]]);
        let q = modularity(&g, &c);
        assert!((-1.0..=1.0).contains(&q));
    }
}
