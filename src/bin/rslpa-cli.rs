//! `rslpa-cli` — run the detector on edge-list files from the shell.
//!
//! ```sh
//! rslpa-cli stats    graph.txt
//! rslpa-cli detect   graph.txt --iterations 200 --seed 42 --out communities.txt
//! rslpa-cli stream   graph.txt edits.txt --detect-every 2
//! rslpa-cli replay   graph.txt edits.txt --queries-per-edit 4 --stats-json out.json
//! rslpa-cli generate lfr 5000 --out graph.txt
//! ```
//!
//! Formats: graphs are whitespace-separated `u v` lines (`#`/`%` comments
//! allowed; direction, duplicates and self-loops are cleaned on load).
//! Edit files contain `+ u v` / `- u v` lines; a blank line ends a batch
//! (`stream`) / marks a barrier (`replay`). Malformed edit lines are hard
//! errors — a silently skipped edit would desynchronize the replayed
//! graph from the caller's intent.
//!
//! ## Tracing (`replay --trace-out FILE`)
//!
//! `--trace-out` attaches the flight recorder
//! ([`rslpa::serve::trace`]) to the replayed service and writes the
//! drained trace on shutdown: Chrome trace-event JSON by default (load in
//! `chrome://tracing` or Perfetto; one "process" per lane — the
//! maintenance thread plus one per shard worker), or one-record-per-line
//! JSONL when the path ends in `.jsonl`. Without the flag the recorder is
//! compiled in but permanently disabled (one relaxed atomic load per
//! span site).
//!
//! ## `--stats-json` schema (`replay`)
//!
//! One JSON object. Top level:
//!
//! | field | meaning |
//! |-------|---------|
//! | `edits` | edit ops submitted by the replay (excluding barriers) |
//! | `replay_secs` | wall seconds from first submit to the final barrier |
//! | `final_epoch` | snapshot epoch the final barrier returned |
//! | `stats` | the service's [`StatsReport`](rslpa::serve::StatsReport), below |
//!
//! `stats` object, counters (all monotone totals over the service life):
//!
//! | field | meaning |
//! |-------|---------|
//! | `schema_version` | shape version of this object; 2 added `attribution_per_shard`, `trace_dropped_records`, and `saturated_samples`; 3 split barrier attribution into arrive/depart and added the publish-collect counters (`boundary_hists_*`, `collect_bytes`, `publish_failures`); 4 added the dirty-region counters (`dirty_vertices`, `dirty_span`, `dirty_fraction`) and `quality_per_window`; 5 added the hot-spot counters (`repartition_vertices_moved`, `hub_pulls`, `damped_deferrals`, `max_degree_delta`) |
//! | `edits_enqueued` | ops accepted into the ingestion queue |
//! | `edits_applied` | ops that survived net-resolution and hit the graph |
//! | `edits_rejected` | no-op ops (duplicate insert, absent delete, self-loop) |
//! | `batches_flushed` | micro-batches flushed into the repair engine |
//! | `snapshots_published` | epochs published (barriers + cadence) |
//! | `slots_repaired` | label slots rewritten by Correction Propagation (Ση) |
//! | `slot_deltas_net` | net slot changes folded into the edge-weight counters (post-compaction; ≤ `slots_repaired`) |
//! | `barriers` | barrier commands honored |
//! | `shards` | maintenance shard count (1 = single writer) |
//! | `shard_edits_routed` | per-shard array: vertex deltas routed to each shard |
//! | `shard_slots_repaired` | per-shard array: slots each shard repaired |
//! | `upkeep_per_shard` | object: per-shard `deltas` folded / wall `ns` of shard-owned counter upkeep (zeros when upkeep is coordinator-central) |
//! | `exchange_rounds` | boundary-exchange rounds (coordinator-relayed or mesh) |
//! | `boundary_msgs` | envelopes that crossed a shard boundary |
//! | `boundary_hists_shipped` | boundary histograms actually shipped to the coordinator at publish (the dirty diff) |
//! | `boundary_hists_total` | boundary histogram slots a full (non-incremental) collect would have shipped |
//! | `boundary_dirty_marked` | boundary vertices dirty at ship time plus first-time ships; `boundary_hists_shipped` ≤ this always holds (the CI gate) |
//! | `collect_bytes` | approximate bytes of interior-counter + boundary-histogram payload shipped at publish |
//! | `publish_failures` | publishes abandoned because a mesh worker died or stopped responding (the previous snapshot stays served) |
//! | `dirty_vertices` | Σ over non-empty flushes of distinct vertices whose stored labels changed (the dirty region) |
//! | `dirty_span` | Σ over the same flushes of the vertex count at flush time; `dirty_fraction` = `dirty_vertices`/`dirty_span` (mean per-flush dirty fraction — near 1.0 means incremental repair costs as much as full recompute) |
//! | `quality_per_window` | array of `{epoch, onmi, f1, omega}` objects recorded by a quality harness (`repro churn`) scoring each published roster against a tracked ground-truth cover; empty when the run is unscored |
//! | `channel_hops` | channel sends spent on coordination + boundary delivery |
//! | `envelope_hops` | Σ channels traversed by boundary envelopes (2/envelope via the coordinator relay, 1 over the mailbox mesh) |
//! | `mailbox_depth` | object: `count`/`p50`/`p99`/`max` of envelopes one shard drained per mesh round |
//! | `barrier_wait_us` | object: `count`/`mean`/`p50`/`p99` of per-flush mesh barrier wait, microseconds |
//! | `cut_edges` | gauge: edges whose endpoints live on different shards |
//! | `boundary_vertices` | gauge: vertices with an off-shard neighbor |
//! | `repartitions` | publish-time ownership re-plans performed |
//! | `vertices_migrated` | vertex rows moved between shards by re-plans |
//! | `repartition_vertices_moved` | alias of `vertices_migrated` under its bench-facing name (the `BENCH_churn.json` per-run field) |
//! | `hub_pulls` | forming hubs pulled (with their spoke frontiers) into a single shard by hub-aware repartitioning |
//! | `damped_deferrals` | label deliveries parked by degree-capped cascade damping (muted-hub re-pick reads, suppressed fetch replies, deferred cascade slots) |
//! | `max_degree_delta` | gauge: largest per-vertex degree gain observed in the most recent repartition window |
//! | `attribution_per_shard` | object of per-shard arrays — `work_us`, `barrier_wait_us`, `barrier_arrive_us`, `barrier_depart_us`, `mailbox_wait_us`, `upkeep_us`, `wall_us`, `coverage` — attributing each worker's wall time; `barrier_wait_us` = arrive (waiting for stragglers) + depart (release-to-resume latency); `coverage` is the accounted fraction (work + waits + upkeep over wall) |
//! | `trace_dropped_records` | flight-recorder records overwritten before the final drain (always 0 with tracing off) |
//! | `saturated_samples` | histogram samples that clamped into the top log₂ bucket (≥ 2⁶³), across all histograms |
//!
//! `stats` object, latency summaries (nanoseconds; percentiles resolve to
//! the geometric mean of the containing log₂ bucket):
//!
//! | field group | meaning |
//! |-------------|---------|
//! | `query_count`, `query_mean_ns`, `query_p50_ns`, `query_p90_ns`, `query_p99_ns`, `query_max_ns` | read-side query latency (all query kinds pooled) |
//! | `flush_count`, `flush_mean_ns`, `flush_p50_ns`, `flush_p99_ns` | flush latency: net-batch resolution + incremental repair |
//! | `counter_mean_ns`, `counter_p50_ns`, `counter_p99_ns` | per-flush **central** edge-weight counter maintenance (delete retirement + slot-delta folding on the maintenance thread); zeros under the mailbox engine, whose shard-owned upkeep is reported in `upkeep_per_shard` |
//! | `snapshot_mean_ns`, `snapshot_p50_ns`, `snapshot_p99_ns` | snapshot publish: counter-read weight pass + thresholding + build + epoch swap |

use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

use rslpa::gen::lfr::LfrParams;
use rslpa::gen::webgraph::{barabasi_albert, rmat, RmatParams};
use rslpa::graph::io::{load_binary_graph, write_edge_list};
use rslpa::graph::GraphStats;
use rslpa::prelude::*;
use rslpa::serve::BySize;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("replay" | "serve") => cmd_replay(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        _ => {
            eprintln!(
                "usage: rslpa-cli <command>\n\
                 commands:\n\
                 \x20 stats    <graph>                          graph statistics\n\
                 \x20 detect   <graph> [--iterations N] [--seed S] [--out FILE]\n\
                 \x20 stream   <graph> <edits> [--iterations N] [--seed S] [--detect-every K]\n\
                 \x20 replay   <graph> <edits> [--iterations N] [--seed S] [--flush-size B]\n\
                 \x20          [--snapshot-every K] [--queries-per-edit Q] [--shards W]\n\
                 \x20          [--engine coordinator|mailbox] [--stats-json FILE] [--trace-out FILE]\n\
                 \x20          replay an edit log through the live serve loop (blank line = barrier)\n\
                 \x20 generate <lfr|rmat|ba> <size> [--seed S] [--out FILE]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Parse `--flag value` options out of an argument list; returns the
/// remaining positional arguments.
fn split_options(args: &[String]) -> (Vec<&str>, std::collections::HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut options = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(flag) = a.strip_prefix("--") {
            let value = it.next().map(String::as_str).unwrap_or("");
            options.insert(flag, value);
        } else {
            positional.push(a.as_str());
        }
    }
    (positional, options)
}

fn opt_parse<T: std::str::FromStr>(
    options: &std::collections::HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (pos, _) = split_options(args);
    let [path] = pos[..] else {
        return Err("stats needs exactly one graph file".into());
    };
    let graph = load_binary_graph(Path::new(path))?;
    println!("{}", GraphStats::compute(&graph));
    Ok(())
}

fn write_cover(cover: &Cover, out: Option<&str>) -> CliResult {
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    for c in cover.communities() {
        let line: Vec<String> = c.iter().map(u32::to_string).collect();
        writeln!(sink, "{}", line.join(" "))?;
    }
    sink.flush()?;
    Ok(())
}

fn cmd_detect(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [path] = pos[..] else {
        return Err("detect needs exactly one graph file".into());
    };
    let graph = load_binary_graph(Path::new(path))?;
    let iterations: usize = opt_parse(&options, "iterations", 200)?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let detector = RslpaDetector::new(graph, RslpaConfig::quick(iterations, seed));
    let detection = detector.detect();
    eprintln!(
        "{} communities (tau1 = {:.4}, tau2 = {:.4}), {} covered, {} overlapping",
        detection.result.cover.len(),
        detection.result.tau1,
        detection.result.tau2,
        detection.result.cover.covered_vertices().len(),
        detection
            .result
            .cover
            .num_overlapping(detector.graph().num_vertices()),
    );
    write_cover(&detection.result.cover, options.get("out").copied())
}

/// One parsed line of an edit file.
enum EditLine {
    /// `+ u v` (insert = true) or `- u v` (insert = false).
    Op(bool, u32, u32),
    /// Blank line: batch boundary (`stream`) / barrier (`replay`).
    Break,
}

/// Strictly parse an edit stream: `+ u v` / `- u v` lines, `#` comments,
/// blank line = batch boundary. Any malformed line — wrong operator, bad
/// vertex, missing or *trailing* tokens — is a hard error naming the line,
/// never a silent skip: a dropped edit would desynchronize the replayed
/// graph from the caller's intent.
fn parse_edit_lines<R: BufRead>(reader: R) -> Result<Vec<EditLine>, String> {
    let mut lines = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            lines.push(EditLine::Break);
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let (Some(op), Some(u), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("line {}: expected '+|- u v'", lineno + 1));
        };
        if let Some(extra) = parts.next() {
            return Err(format!(
                "line {}: trailing token {extra:?} after '+|- u v'",
                lineno + 1
            ));
        }
        let u: u32 = u
            .parse()
            .map_err(|_| format!("line {}: bad vertex {u:?}", lineno + 1))?;
        let v: u32 = v
            .parse()
            .map_err(|_| format!("line {}: bad vertex {v:?}", lineno + 1))?;
        match op {
            "+" => lines.push(EditLine::Op(true, u, v)),
            "-" => lines.push(EditLine::Op(false, u, v)),
            _ => return Err(format!("line {}: unknown op {op:?}", lineno + 1)),
        }
    }
    Ok(lines)
}

/// Group parsed edit lines into validated batches (blank line = batch end).
fn parse_edit_batches<R: BufRead>(reader: R) -> Result<Vec<EditBatch>, String> {
    let mut batches = Vec::new();
    let mut ins: Vec<(u32, u32)> = Vec::new();
    let mut del: Vec<(u32, u32)> = Vec::new();
    for line in parse_edit_lines(reader)? {
        match line {
            EditLine::Op(true, u, v) => ins.push((u, v)),
            EditLine::Op(false, u, v) => del.push((u, v)),
            EditLine::Break => {
                if !ins.is_empty() || !del.is_empty() {
                    batches.push(EditBatch::from_lists(ins.drain(..), del.drain(..)));
                }
            }
        }
    }
    if !ins.is_empty() || !del.is_empty() {
        batches.push(EditBatch::from_lists(ins, del));
    }
    Ok(batches)
}

fn cmd_stream(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [graph_path, edits_path] = pos[..] else {
        return Err("stream needs a graph file and an edits file".into());
    };
    let graph = load_binary_graph(Path::new(graph_path))?;
    let iterations: usize = opt_parse(&options, "iterations", 200)?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let detect_every: usize = opt_parse(&options, "detect-every", 1)?;
    let file = std::fs::File::open(edits_path)?;
    let batches = parse_edit_batches(std::io::BufReader::new(file))?;
    let mut detector = RslpaDetector::new(graph, RslpaConfig::quick(iterations, seed));
    println!(
        "initial: {} vertices, {} edges, {} communities",
        detector.graph().num_vertices(),
        detector.graph().num_edges(),
        detector.detect().result.cover.len()
    );
    for (i, batch) in batches.iter().enumerate() {
        // Grow the id space if the batch references fresh vertices.
        let max_id = batch
            .insertions()
            .iter()
            .chain(batch.deletions())
            .flat_map(|&(u, v)| [u, v])
            .max()
            .unwrap_or(0);
        detector.ensure_vertices(max_id as usize + 1);
        let report = detector.apply_batch(batch)?;
        print!(
            "batch {:>3}: {:>6} edits, repaired {:>8} slots ({} repicks, {} deliveries)",
            i + 1,
            batch.len(),
            report.eta,
            report.repicks,
            report.deliveries
        );
        if (i + 1) % detect_every == 0 {
            let cover = detector.detect().result.cover;
            print!(", {} communities", cover.len());
        }
        println!();
    }
    Ok(())
}

/// Replay an edit log through the live serve loop, issuing interleaved
/// queries against the epoch snapshots. Blank lines in the edit file are
/// barriers: the replay waits for a covering snapshot and reports it.
fn cmd_replay(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [graph_path, edits_path] = pos[..] else {
        return Err("replay needs a graph file and an edits file".into());
    };
    let graph = load_binary_graph(Path::new(graph_path))?;
    let iterations: usize = opt_parse(&options, "iterations", 50)?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let flush_size: usize = opt_parse(&options, "flush-size", 256)?;
    let snapshot_every: usize = opt_parse(&options, "snapshot-every", 1)?;
    let queries_per_edit: usize = opt_parse(&options, "queries-per-edit", 2)?;
    let shards: usize = opt_parse(&options, "shards", 1)?;
    let engine: rslpa::serve::ExchangeMode = match options.get("engine") {
        Some(v) => v.parse().map_err(|e| format!("--engine: {e}"))?,
        None => Default::default(),
    };
    let trace_out = options.get("trace-out").copied();
    let file = std::fs::File::open(edits_path)?;
    let lines = parse_edit_lines(std::io::BufReader::new(file))?;

    let started = std::time::Instant::now();
    let mut config = ServeConfig::quick(iterations, seed)
        .with_policy(BySize::new(flush_size))
        .with_snapshot_every(snapshot_every)
        .with_shards(shards)
        .with_exchange(engine);
    if trace_out.is_some() {
        config = config.with_trace(rslpa::serve::TraceOptions::default());
    }
    let service = CommunityService::start(graph, config);
    let propagation_secs = started.elapsed().as_secs_f64();
    let genesis = service.latest();
    println!(
        "epoch 0: {} vertices, {} edges, {} communities (initial propagation {:.2}s)",
        genesis.num_vertices,
        genesis.num_edges,
        genesis.cover.len(),
        propagation_secs,
    );

    let ingest = service.ingest();
    let mut queries = service.query();
    let replay_started = std::time::Instant::now();
    let mut edits = 0u64;
    for line in lines {
        match line {
            EditLine::Op(insert, u, v) => {
                if insert {
                    ingest.insert(u, v)?;
                } else {
                    ingest.delete(u, v)?;
                }
                edits += 1;
                // Interleave reads: queries answer from the newest published
                // snapshot while the maintenance thread repairs in parallel.
                for k in 0..queries_per_edit {
                    if k % 2 == 0 {
                        let _ = queries.membership(u);
                    } else {
                        let _ = queries.overlap(u, v);
                    }
                }
            }
            EditLine::Break => {
                let epoch = ingest.barrier()?;
                let snap = service.latest();
                println!(
                    "epoch {epoch}: {} vertices, {} edges, {} communities ({} batches applied)",
                    snap.num_vertices,
                    snap.num_edges,
                    snap.cover.len(),
                    snap.batches_applied,
                );
            }
        }
    }
    let final_epoch = ingest.barrier()?;
    let replay_secs = replay_started.elapsed().as_secs_f64();
    let tracer = service.tracer();
    let report = service.shutdown();
    if let Some(path) = trace_out {
        // Drained after shutdown, so every lane's writer has joined.
        let dump = tracer.drain();
        let out = if path.ends_with(".jsonl") {
            dump.jsonl()
        } else {
            let labels: Vec<String> = std::iter::once("maintenance".to_string())
                .chain((0..shards).map(|s| format!("shard-{s}")))
                .collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            dump.chrome_json(&refs)
        };
        std::fs::write(path, out)?;
        eprintln!(
            "wrote trace to {path} ({} records, {} dropped)",
            dump.records.len(),
            dump.dropped
        );
    }
    let snap_line = format!(
        "replayed {edits} edits in {replay_secs:.2}s ({:.0} edits/s), final epoch {final_epoch}",
        edits as f64 / replay_secs.max(1e-9),
    );
    println!("{snap_line}");
    println!("{report}");
    if let Some(path) = options.get("stats-json") {
        let json = format!(
            "{{\"edits\":{edits},\"replay_secs\":{replay_secs:.4},\
             \"final_epoch\":{final_epoch},\"stats\":{}}}\n",
            report.to_json()
        );
        std::fs::write(path, json)?;
        eprintln!("wrote stats to {path}");
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [kind, size] = pos[..] else {
        return Err("generate needs a kind (lfr|rmat|ba) and a size".into());
    };
    let n: usize = size.parse().map_err(|_| format!("bad size {size:?}"))?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let graph = match kind {
        "lfr" => {
            let instance = LfrParams {
                seed,
                ..LfrParams::scaled(n)
            }
            .generate()?;
            eprintln!(
                "planted {} communities ({} overlapping vertices), mixing {:.3}",
                instance.ground_truth.len(),
                instance.ground_truth.num_overlapping(n),
                instance.achieved_mixing
            );
            if let Some(truth_path) = options.get("truth") {
                let mut f = std::io::BufWriter::new(std::fs::File::create(truth_path)?);
                for c in instance.ground_truth.communities() {
                    let line: Vec<String> = c.iter().map(u32::to_string).collect();
                    writeln!(f, "{}", line.join(" "))?;
                }
            }
            instance.graph
        }
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            rmat(&RmatParams::web(scale, seed))
        }
        "ba" => barabasi_albert(n, 5, seed),
        other => return Err(format!("unknown generator {other:?}").into()),
    };
    match options.get("out") {
        Some(path) => {
            write_edge_list(&graph, std::fs::File::create(path)?)?;
            eprintln!(
                "wrote {} vertices, {} edges to {path}",
                graph.num_vertices(),
                graph.num_edges()
            );
        }
        None => write_edge_list(&graph, std::io::stdout().lock())?,
    }
    Ok(())
}
