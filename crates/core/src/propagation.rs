//! Algorithm 1 — randomized label propagation (centralized).
//!
//! At iteration `t`, every vertex `v` uniformly picks `src ∈ N(v)` and
//! `pos ∈ {0, …, t−1}` and appends `l_src^pos`. By Theorems 2–3 this is
//! equivalent in distribution to SLPA's "uniformly pick from the pooled
//! multiset of neighbor sends", while moving only **one** label per vertex
//! per iteration. Receiver records are registered as picks happen (the
//! paper: "R_i can be simply recorded during the label propagation process
//! with no additional operations required").

use rslpa_graph::rng::{PickKey, Stream};
use rslpa_graph::{AdjacencyGraph, VertexId};

use crate::state::{LabelState, NO_SOURCE};

/// Draw the `(src, pos)` pick for `(v, t)` at `epoch` from `neighbors`.
///
/// Shared by the initial run (epoch 0), the BSP program, and every repick
/// path of the incremental algorithm — one definition of randomness.
#[inline]
pub fn draw_pick(
    seed: u64,
    v: VertexId,
    t: u32,
    epoch: u32,
    neighbors: &[VertexId],
) -> (VertexId, u32) {
    debug_assert!(!neighbors.is_empty());
    let key = PickKey {
        seed,
        vertex: v,
        iteration: t,
        epoch,
    };
    let src = neighbors[key.bounded(Stream::Src, neighbors.len() as u64) as usize];
    let pos = key.bounded(Stream::Pos, u64::from(t)) as u32;
    (src, pos)
}

/// Run `T` iterations of randomized label propagation on `graph`.
///
/// Isolated vertices keep repeating their own label (src = sentinel, no
/// record), so all label sequences have length `T + 1`.
pub fn run_propagation(graph: &AdjacencyGraph, t_max: usize, seed: u64) -> LabelState {
    let n = graph.num_vertices();
    let mut state = LabelState::new(n, t_max, seed);
    for t in 1..=t_max as u32 {
        for v in 0..n as VertexId {
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                // Sentinel pick; label defaults to the initial label.
                state.set_pick(v, t, NO_SOURCE, 0);
                state.set_label(v, t, state.label(v, 0));
                continue;
            }
            let (src, pos) = draw_pick(seed, v, t, 0, nbrs);
            state.set_pick(v, t, src, pos);
            state.set_label(v, t, state.label(src, pos));
            state.add_record(src, pos, v, t);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rslpa_graph::rng::DetRng;

    fn triangle() -> AdjacencyGraph {
        AdjacencyGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn sequences_complete_and_consistent() {
        let g = triangle();
        let s = run_propagation(&g, 10, 1);
        for v in 0..3u32 {
            assert_eq!(s.label_sequence(v).len(), 11);
            for t in 1..=10u32 {
                let (src, pos) = s.pick(v, t);
                assert!(g.neighbors(v).contains(&src), "src must be a neighbor");
                assert!(pos < t, "pos must reference an earlier slot");
                assert_eq!(
                    s.label(v, t),
                    s.label(src, pos),
                    "label consistent with provenance"
                );
            }
        }
        assert_eq!(s.total_records(), 3 * 10);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = triangle();
        let a = run_propagation(&g, 20, 5);
        let b = run_propagation(&g, 20, 5);
        assert_eq!(a.label_sequence(0), b.label_sequence(0));
        let c = run_propagation(&g, 20, 6);
        assert_ne!(
            (0..3)
                .map(|v| a.label_sequence(v).to_vec())
                .collect::<Vec<_>>(),
            (0..3)
                .map(|v| c.label_sequence(v).to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn isolated_vertices_repeat_own_label() {
        let mut g = AdjacencyGraph::new(3);
        g.insert_edge(0, 1);
        let s = run_propagation(&g, 5, 1);
        assert!(s.label_sequence(2).iter().all(|&l| l == 2));
        assert_eq!(s.pick(2, 3), (NO_SOURCE, 0));
        assert_eq!(s.total_records(), 2 * 5);
    }

    /// Theorem 3 realized: over many seeds, `(src, pos)` at a fixed slot is
    /// uniform over `N(v) × {0..t-1}` (χ² test).
    #[test]
    fn picks_are_uniform_over_src_pos() {
        let g = triangle();
        let (v, t) = (0u32, 4u32);
        let cells = 2 * 4; // |N(0)| = 2, pos ∈ 0..4
        let trials = 8000u64;
        let mut counts = vec![0u64; cells];
        for seed in 0..trials {
            let (src, pos) = draw_pick(seed, v, t, 0, g.neighbors(v));
            let si = g.neighbors(v).iter().position(|&u| u == src).unwrap();
            counts[si * 4 + pos as usize] += 1;
        }
        let expected = trials as f64 / cells as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 7 dof, 99.9% critical value 24.3; generous margin.
        assert!(chi2 < 30.0, "chi2 = {chi2}, counts = {counts:?}");
    }

    /// Theorems 2/3 cross-check: picking `(src, pos)` uniformly matches the
    /// distribution of "every neighbor sends a uniform label from its
    /// sequence, then pick uniformly from the received multiset".
    #[test]
    fn equivalence_with_pooled_multiset_sampling() {
        // Fixed neighbor sequences of length 3; vertex v has 2 neighbors.
        let seqs: [&[u32]; 2] = [&[1, 1, 2], &[2, 3, 3]];
        let trials = 60_000u64;
        // Process A: draw (src, pos) uniformly.
        let mut count_a: std::collections::HashMap<u32, u64> = Default::default();
        let mut rng = DetRng::new(1);
        for _ in 0..trials {
            let src = rng.bounded(2) as usize;
            let pos = rng.bounded(3) as usize;
            *count_a.entry(seqs[src][pos]).or_insert(0) += 1;
        }
        // Process B: each neighbor sends uniform label; pick uniform from
        // the received multiset.
        let mut count_b: std::collections::HashMap<u32, u64> = Default::default();
        for _ in 0..trials {
            let m = [
                seqs[0][rng.bounded(3) as usize],
                seqs[1][rng.bounded(3) as usize],
            ];
            *count_b.entry(m[rng.bounded(2) as usize]).or_insert(0) += 1;
        }
        for l in [1u32, 2, 3] {
            let pa = *count_a.get(&l).unwrap_or(&0) as f64 / trials as f64;
            let pb = *count_b.get(&l).unwrap_or(&0) as f64 / trials as f64;
            assert!((pa - pb).abs() < 0.01, "label {l}: {pa} vs {pb}");
        }
        // And both match the analytic pooled frequency: 1:2/6, 2:2/6, 3:2/6.
        for l in [1u32, 2, 3] {
            let pa = *count_a.get(&l).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (pa - 1.0 / 3.0).abs() < 0.01,
                "label {l} analytic mismatch: {pa}"
            );
        }
    }
}
