//! Forming-hub detection for hub-aware repartitioning.
//!
//! The flash-crowd failure mode starts as a degree signal: a handful of
//! vertices gain edges much faster than everyone else, and by the time
//! the published cover reflects the new structure, their spokes are
//! scattered across shards and every correction wave pays the boundary
//! exchange. [`HubTracker`] watches net degree deltas between
//! repartitions and nominates the top gainers as
//! [`HubPull`](rslpa_graph::HubPull)s, which the publish-time
//! repartition pins — spokes and all — onto one shard.

use rslpa_graph::{AdjacencyGraph, EditBatch, FxHashMap, HubPull, VertexId};

/// How many top degree-gainers a single repartition may pull.
const TOP_K: usize = 8;

/// Minimum net degree gain since the last repartition for a vertex to
/// count as a forming hub. Ordinary churn (a few edges per vertex per
/// window) stays well below this; a flash crowd's anchors blow past it.
const MIN_DELTA: i64 = 16;

/// Net per-vertex degree deltas since the last repartition.
#[derive(Debug, Default)]
pub struct HubTracker {
    deltas: FxHashMap<VertexId, i64>,
}

impl HubTracker {
    /// Fold one applied edit batch into the per-vertex deltas: +1 per
    /// endpoint of an inserted edge, −1 per endpoint of a deleted one.
    pub fn note_batch(&mut self, batch: &EditBatch) {
        for &(u, v) in batch.insertions() {
            *self.deltas.entry(u).or_insert(0) += 1;
            *self.deltas.entry(v).or_insert(0) += 1;
        }
        for &(u, v) in batch.deletions() {
            *self.deltas.entry(u).or_insert(0) -= 1;
            *self.deltas.entry(v).or_insert(0) -= 1;
        }
    }

    /// Largest net degree gain currently tracked (a publish-window gauge;
    /// 0 when nothing gained).
    pub fn max_degree_delta(&self) -> i64 {
        self.deltas.values().copied().max().unwrap_or(0).max(0)
    }

    /// Nominate the forming hubs — the top [`TOP_K`] net gainers at or
    /// above [`MIN_DELTA`], each with its *current* neighbor set as the
    /// spoke frontier — and reset the deltas for the next
    /// inter-repartition window. Ordering is deterministic: delta
    /// descending, vertex id ascending on ties.
    pub fn take_hubs(&mut self, graph: &AdjacencyGraph) -> Vec<HubPull> {
        let mut gainers: Vec<(VertexId, i64)> = self
            .deltas
            .drain()
            .filter(|&(_, d)| d >= MIN_DELTA)
            .collect();
        gainers.sort_unstable_by_key(|&(v, d)| (std::cmp::Reverse(d), v));
        gainers.truncate(TOP_K);
        gainers
            .into_iter()
            .map(|(hub, _)| {
                let mut spokes: Vec<VertexId> = graph.neighbors(hub).iter().copied().collect();
                spokes.sort_unstable();
                HubPull { hub, spokes }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(ins: &[(u32, u32)], del: &[(u32, u32)]) -> EditBatch {
        EditBatch::from_lists(ins.iter().copied(), del.iter().copied())
    }

    #[test]
    fn quiet_churn_nominates_nothing() {
        let g = AdjacencyGraph::from_edges(6, [(0, 1), (2, 3)]);
        let mut t = HubTracker::default();
        t.note_batch(&batch_of(&[(0, 2), (1, 3)], &[(0, 1)]));
        assert!(t.max_degree_delta() < MIN_DELTA);
        assert!(t.take_hubs(&g).is_empty());
    }

    #[test]
    fn flash_crowd_anchor_is_nominated_with_its_spokes() {
        let edges: Vec<(u32, u32)> = (1..=20u32).map(|i| (0, i)).collect();
        let g = AdjacencyGraph::from_edges(21, edges.clone());
        let mut t = HubTracker::default();
        t.note_batch(&batch_of(&edges, &[]));
        assert!(t.max_degree_delta() >= 20);
        let hubs = t.take_hubs(&g);
        assert_eq!(hubs.len(), 1, "only vertex 0 crosses MIN_DELTA");
        assert_eq!(hubs[0].hub, 0);
        assert_eq!(hubs[0].spokes, (1..=20u32).collect::<Vec<_>>());
        // take_hubs resets the window.
        assert!(t.take_hubs(&g).is_empty());
        assert_eq!(t.max_degree_delta(), 0);
    }

    #[test]
    fn deletions_cancel_insertions() {
        let edges: Vec<(u32, u32)> = (1..=20u32).map(|i| (0, i)).collect();
        let g = AdjacencyGraph::from_edges(21, Vec::<(u32, u32)>::new());
        let mut t = HubTracker::default();
        t.note_batch(&batch_of(&edges, &[]));
        t.note_batch(&batch_of(&[], &edges[..10]));
        // Net +10 at the anchor: below the hub threshold.
        assert!(t.take_hubs(&g).is_empty());
    }

    #[test]
    fn top_k_caps_the_pull_list_deterministically() {
        // 12 anchors gain ≥ MIN_DELTA; only the 8 biggest gainers (ties
        // to lower ids) are nominated.
        let mut t = HubTracker::default();
        let mut edges = Vec::new();
        for hub in 0..12u32 {
            let gain = 16 + i64::from(hub % 3); // deltas 16, 17, 18 repeating
            for k in 0..gain as u32 {
                edges.push((hub, 100 + hub * 32 + k));
            }
        }
        let n = 100 + 12 * 32;
        let g = AdjacencyGraph::from_edges(n as usize, edges.clone());
        t.note_batch(&batch_of(&edges, &[]));
        let hubs = t.take_hubs(&g);
        assert_eq!(hubs.len(), TOP_K);
        let ids: Vec<u32> = hubs.iter().map(|h| h.hub).collect();
        // Delta 18 → hubs 2,5,8,11; delta 17 → 1,4,7,10 — in that order.
        assert_eq!(ids, vec![2, 5, 8, 11, 1, 4, 7, 10]);
    }
}
