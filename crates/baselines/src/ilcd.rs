//! iLCD — intrinsic longitudinal community detection (simplified).
//!
//! Cazabet, Amblard & Hanachi (SocialCom 2010) — the paper's reference
//! \[11\], dismissed in §I because it "cannot handle edge/vertex deletions".
//! This implementation makes that limitation structural: the only mutation
//! is [`ILcd::add_edge`]; there is no deletion API at all.
//!
//! Simplified mechanics faithful to the original's spirit: edges stream
//! in; when a new edge closes enough triangles inside an existing
//! community, the endpoints join it; when two vertices share enough
//! common neighbors outside any community, a new community is seeded from
//! the closed neighborhood. Communities sharing most of their members are
//! merged.

use rslpa_graph::{AdjacencyGraph, Cover, FxHashSet, VertexId};

/// iLCD parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ILcdConfig {
    /// A vertex joins a community when it has at least this many neighbors
    /// inside it.
    pub join_threshold: usize,
    /// A new community is seeded when a fresh edge's endpoints share at
    /// least this many common neighbors.
    pub seed_threshold: usize,
    /// Two communities merge when the smaller shares this fraction of its
    /// members with the larger.
    pub merge_overlap: f64,
}

impl Default for ILcdConfig {
    fn default() -> Self {
        Self {
            join_threshold: 2,
            seed_threshold: 2,
            merge_overlap: 0.75,
        }
    }
}

/// Streaming insertion-only community detector.
#[derive(Clone, Debug)]
pub struct ILcd {
    config: ILcdConfig,
    graph: AdjacencyGraph,
    communities: Vec<FxHashSet<VertexId>>,
}

impl ILcd {
    /// Empty detector over `n` vertices.
    pub fn new(n: usize, config: ILcdConfig) -> Self {
        Self {
            config,
            graph: AdjacencyGraph::new(n),
            communities: Vec::new(),
        }
    }

    /// Current graph snapshot.
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }

    /// Stream one edge insertion. There is deliberately no `remove_edge`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if !self.graph.insert_edge(u, v) {
            return;
        }
        // 1. Try to grow existing communities across the new edge.
        let mut joined_any = false;
        for ci in 0..self.communities.len() {
            for (a, b) in [(u, v), (v, u)] {
                if self.communities[ci].contains(&a) && !self.communities[ci].contains(&b) {
                    let inside = self
                        .graph
                        .neighbors(b)
                        .iter()
                        .filter(|x| self.communities[ci].contains(x))
                        .count();
                    if inside >= self.config.join_threshold {
                        self.communities[ci].insert(b);
                        joined_any = true;
                    }
                }
            }
        }
        // 2. Seed a new community from a dense pair outside all communities.
        if !joined_any && !self.share_community(u, v) {
            let common: Vec<VertexId> = intersect(self.graph.neighbors(u), self.graph.neighbors(v));
            if common.len() >= self.config.seed_threshold {
                let mut c: FxHashSet<VertexId> = common.into_iter().collect();
                c.insert(u);
                c.insert(v);
                self.communities.push(c);
            }
        }
        self.merge_overlapping();
    }

    /// Stream a whole batch of insertions (deterministic order).
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    fn share_community(&self, u: VertexId, v: VertexId) -> bool {
        self.communities
            .iter()
            .any(|c| c.contains(&u) && c.contains(&v))
    }

    fn merge_overlapping(&mut self) {
        let threshold = self.config.merge_overlap;
        loop {
            let mut merge_pair: Option<(usize, usize)> = None;
            'scan: for i in 0..self.communities.len() {
                for j in (i + 1)..self.communities.len() {
                    let (small, large) = if self.communities[i].len() <= self.communities[j].len() {
                        (&self.communities[i], &self.communities[j])
                    } else {
                        (&self.communities[j], &self.communities[i])
                    };
                    let shared = small.iter().filter(|x| large.contains(x)).count();
                    if (shared as f64) >= threshold * small.len() as f64 {
                        merge_pair = Some((i, j));
                        break 'scan;
                    }
                }
            }
            let Some((i, j)) = merge_pair else { break };
            let absorbed = self.communities.swap_remove(j);
            self.communities[i].extend(absorbed);
        }
    }

    /// Current communities (size ≥ 3, as in the original's defaults).
    pub fn communities(&self) -> Cover {
        Cover::new(
            self.communities
                .iter()
                .filter(|c| c.len() >= 3)
                .map(|c| c.iter().copied().collect::<Vec<_>>()),
        )
    }
}

/// Intersection of two sorted slices.
fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_communities_from_clique_stream() {
        let mut ilcd = ILcd::new(8, ILcdConfig::default());
        // Stream two 4-cliques.
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    ilcd.add_edge(i, j);
                }
            }
        }
        let cover = ilcd.communities();
        assert_eq!(cover.len(), 2, "{:?}", cover.communities());
        assert!(cover
            .communities()
            .iter()
            .any(|c| c.contains(&0) && c.contains(&3)));
        assert!(cover
            .communities()
            .iter()
            .any(|c| c.contains(&4) && c.contains(&7)));
    }

    #[test]
    fn bridge_vertex_can_join_both() {
        let mut ilcd = ILcd::new(9, ILcdConfig::default());
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    ilcd.add_edge(i, j);
                }
            }
        }
        // Vertex 8 connects densely to both cliques.
        for v in [0u32, 1, 2, 4, 5, 6] {
            ilcd.add_edge(8, v);
        }
        let cover = ilcd.communities();
        assert!(cover.num_overlapping(9) >= 1, "{:?}", cover.communities());
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut ilcd = ILcd::new(4, ILcdConfig::default());
        ilcd.add_edge(0, 1);
        ilcd.add_edge(0, 1);
        assert_eq!(ilcd.graph().num_edges(), 1);
    }

    #[test]
    fn sparse_stream_yields_no_communities() {
        let mut ilcd = ILcd::new(6, ILcdConfig::default());
        ilcd.add_edges([(0, 1), (2, 3), (4, 5)]);
        assert!(ilcd.communities().is_empty());
    }

    #[test]
    fn deterministic() {
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)];
        let mut a = ILcd::new(4, ILcdConfig::default());
        a.add_edges(edges.clone());
        let mut b = ILcd::new(4, ILcdConfig::default());
        b.add_edges(edges);
        assert_eq!(a.communities(), b.communities());
    }
}
