//! Barrier micro-bench (`repro barrier`): the mesh round protocol cost.
//!
//! The mailbox mesh originally synchronized each exchange round with two
//! `std::sync::Barrier` waits (one to publish sent-counters, one to agree
//! on quiescence). The sense-reversing barrier collapsed that to a single
//! wait per round by snapshotting the monotone sent counter in the
//! leader's pre-release hook. This bench isolates the protocol delta —
//! `2 × std::sync::Barrier::wait` vs `1 × SenseBarrier::wait` per round —
//! across thread counts, without any of the surrounding exchange work.
//!
//! The sweep is spliced into `BENCH_serve.json` as a `"barrier"` block
//! (appended to an existing serve payload when one is present, so one
//! committed file carries both the traced workload and this micro-bench).
//! On a 1-core host the numbers measure park/unpark and scheduling cost,
//! not cache-line contention — `config.cores` records which regime a
//! committed sweep ran in.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use rslpa_core::SenseBarrier;

use crate::host_cores;
use crate::report::Table;

/// Rounds per cell — enough to amortize thread spawn/join noise while
/// keeping the whole sweep under a second on a laptop.
const ROUNDS: usize = 10_000;

/// Thread counts swept (the mesh runs one thread per shard; 2/4/8 match
/// the serve sweeps).
const THREADS: [usize; 3] = [2, 4, 8];

/// One cell's measurements, in ns per round (a round = one full
/// release-everyone cycle of the protocol under test).
struct Cell {
    threads: usize,
    /// PR 7 protocol: two `std::sync::Barrier` waits per round.
    std_double_ns: f64,
    /// Current protocol: one `SenseBarrier` wait per round.
    sense_single_ns: f64,
}

fn bench_std_double(threads: usize) -> f64 {
    let barrier = Arc::new(Barrier::new(threads));
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    barrier.wait();
                }
            });
        }
    });
    started.elapsed().as_nanos() as f64 / ROUNDS as f64
}

fn bench_sense_single(threads: usize) -> f64 {
    let barrier = Arc::new(SenseBarrier::new(threads));
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut sense = false;
                for _ in 0..ROUNDS {
                    barrier.wait(&mut sense);
                }
            });
        }
    });
    started.elapsed().as_nanos() as f64 / ROUNDS as f64
}

/// Run the sweep and return one cell per thread count.
fn sweep() -> Vec<Cell> {
    THREADS
        .iter()
        .map(|&threads| Cell {
            threads,
            std_double_ns: bench_std_double(threads),
            sense_single_ns: bench_sense_single(threads),
        })
        .collect()
}

/// Splice `block` (a `"key": value` fragment) into an existing top-level
/// JSON object, or wrap it in a fresh one. Keeps `repro trace` +
/// `repro barrier` composable into a single committed `BENCH_serve.json`:
/// run trace first (it rewrites the whole file), then barrier appends.
fn splice_block(out_path: &str, block: &str) -> String {
    if let Ok(existing) = std::fs::read_to_string(out_path) {
        let trimmed = existing.trim_end();
        // Only append to a well-formed object that doesn't already carry
        // a barrier block (a rerun without a fresh trace run would
        // otherwise duplicate the key).
        if trimmed.starts_with('{') && trimmed.ends_with('}') && !existing.contains("\"barrier\":")
        {
            let body = &trimmed[..trimmed.len() - 1];
            return format!(
                "{},\n  {}\n}}\n",
                body.trim_end().trim_end_matches(','),
                block
            );
        }
    }
    format!("{{\n  \"experiment\": \"barrier\",\n  {block}\n}}\n")
}

/// Run the micro-bench, print the table, and fold the `"barrier"` block
/// into `out_path`.
pub fn barrier(out_path: &str) {
    eprintln!(
        "[barrier] {} rounds per cell, threads {:?}, {} core(s)",
        ROUNDS,
        THREADS,
        host_cores()
    );
    let cells = sweep();
    let mut t = Table::new(
        "mesh round barrier protocol (ns/round)".to_string(),
        &["threads", "2x std::Barrier", "1x SenseBarrier", "ratio"],
    );
    for c in &cells {
        t.row(vec![
            c.threads.to_string(),
            format!("{:.0}", c.std_double_ns),
            format!("{:.0}", c.sense_single_ns),
            format!("{:.2}x", c.std_double_ns / c.sense_single_ns.max(1.0)),
        ]);
    }
    t.print();

    let list = |f: &dyn Fn(&Cell) -> String| -> String {
        cells.iter().map(|c| f(c)).collect::<Vec<_>>().join(", ")
    };
    let block = format!(
        "\"barrier\": {{\n    \"rounds_per_cell\": {ROUNDS},\n    \"cores\": {},\n    \
         \"note\": \"1-core hosts measure park/unpark + scheduling, not contention\",\n    \
         \"threads\": [{}],\n    \"std_double_wait_ns_per_round\": [{}],\n    \
         \"sense_single_wait_ns_per_round\": [{}],\n    \"round_cost_ratio\": [{}]\n  }}",
        host_cores(),
        list(&|c| c.threads.to_string()),
        list(&|c| format!("{:.0}", c.std_double_ns)),
        list(&|c| format!("{:.0}", c.sense_single_ns)),
        list(&|c| format!("{:.3}", c.std_double_ns / c.sense_single_ns.max(1.0))),
    );
    let json = splice_block(out_path, &block);
    std::fs::write(out_path, &json).expect("write BENCH_serve.json");
    eprintln!("[barrier] wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_appends_to_an_existing_object() {
        let dir = std::env::temp_dir().join(format!("rslpa-barrier-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();

        // No file yet: standalone object.
        let fresh = splice_block(path, "\"barrier\": {\"rounds_per_cell\": 1}");
        assert!(fresh.starts_with("{\n  \"experiment\": \"barrier\""));
        assert_eq!(fresh.matches('{').count(), fresh.matches('}').count());

        // Existing serve payload: block appended before the closing brace.
        std::fs::write(
            path,
            "{\n  \"experiment\": \"serve\",\n  \"final_epoch\": 3\n}\n",
        )
        .unwrap();
        let spliced = splice_block(path, "\"barrier\": {\"rounds_per_cell\": 1}");
        assert!(spliced.contains("\"experiment\": \"serve\""));
        assert!(spliced.contains("\"barrier\": {\"rounds_per_cell\": 1}"));
        assert_eq!(spliced.matches('{').count(), spliced.matches('}').count());

        // Already carries a barrier block: start over instead of duplicating.
        std::fs::write(path, &spliced).unwrap();
        let again = splice_block(path, "\"barrier\": {\"rounds_per_cell\": 2}");
        assert!(again.starts_with("{\n  \"experiment\": \"barrier\""));
        assert_eq!(again.matches("\"barrier\":").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn micro_sweep_produces_positive_costs() {
        // One tiny cell end-to-end: both protocols complete and cost
        // something. (Full ROUNDS would be slow under the test profile.)
        let barrier = Arc::new(SenseBarrier::new(2));
        let started = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut sense = false;
                    for _ in 0..64 {
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
        assert!(started.elapsed().as_nanos() > 0);
    }
}
