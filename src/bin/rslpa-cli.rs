//! `rslpa-cli` — run the detector on edge-list files from the shell.
//!
//! ```sh
//! rslpa-cli stats    graph.txt
//! rslpa-cli detect   graph.txt --iterations 200 --seed 42 --out communities.txt
//! rslpa-cli stream   graph.txt edits.txt --detect-every 2
//! rslpa-cli generate lfr 5000 --out graph.txt
//! ```
//!
//! Formats: graphs are whitespace-separated `u v` lines (`#`/`%` comments
//! allowed; direction, duplicates and self-loops are cleaned on load).
//! Edit files contain `+ u v` / `- u v` lines; a blank line ends a batch.

use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

use rslpa::gen::lfr::LfrParams;
use rslpa::gen::webgraph::{barabasi_albert, rmat, RmatParams};
use rslpa::graph::io::{load_binary_graph, write_edge_list};
use rslpa::graph::GraphStats;
use rslpa::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        _ => {
            eprintln!(
                "usage: rslpa-cli <command>\n\
                 commands:\n\
                 \x20 stats    <graph>                          graph statistics\n\
                 \x20 detect   <graph> [--iterations N] [--seed S] [--out FILE]\n\
                 \x20 stream   <graph> <edits> [--iterations N] [--seed S] [--detect-every K]\n\
                 \x20 generate <lfr|rmat|ba> <size> [--seed S] [--out FILE]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Parse `--flag value` options out of an argument list; returns the
/// remaining positional arguments.
fn split_options(args: &[String]) -> (Vec<&str>, std::collections::HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut options = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(flag) = a.strip_prefix("--") {
            let value = it.next().map(String::as_str).unwrap_or("");
            options.insert(flag, value);
        } else {
            positional.push(a.as_str());
        }
    }
    (positional, options)
}

fn opt_parse<T: std::str::FromStr>(
    options: &std::collections::HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (pos, _) = split_options(args);
    let [path] = pos[..] else {
        return Err("stats needs exactly one graph file".into());
    };
    let graph = load_binary_graph(Path::new(path))?;
    println!("{}", GraphStats::compute(&graph));
    Ok(())
}

fn write_cover(cover: &Cover, out: Option<&str>) -> CliResult {
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    for c in cover.communities() {
        let line: Vec<String> = c.iter().map(u32::to_string).collect();
        writeln!(sink, "{}", line.join(" "))?;
    }
    sink.flush()?;
    Ok(())
}

fn cmd_detect(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [path] = pos[..] else {
        return Err("detect needs exactly one graph file".into());
    };
    let graph = load_binary_graph(Path::new(path))?;
    let iterations: usize = opt_parse(&options, "iterations", 200)?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let detector = RslpaDetector::new(graph, RslpaConfig::quick(iterations, seed));
    let detection = detector.detect();
    eprintln!(
        "{} communities (tau1 = {:.4}, tau2 = {:.4}), {} covered, {} overlapping",
        detection.result.cover.len(),
        detection.result.tau1,
        detection.result.tau2,
        detection.result.cover.covered_vertices().len(),
        detection
            .result
            .cover
            .num_overlapping(detector.graph().num_vertices()),
    );
    write_cover(&detection.result.cover, options.get("out").copied())
}

/// Parse an edit stream: `+ u v` / `- u v` lines, blank line = batch end.
fn parse_edit_batches<R: BufRead>(reader: R) -> Result<Vec<EditBatch>, String> {
    let mut batches = Vec::new();
    let mut ins: Vec<(u32, u32)> = Vec::new();
    let mut del: Vec<(u32, u32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if !ins.is_empty() || !del.is_empty() {
                batches.push(EditBatch::from_lists(ins.drain(..), del.drain(..)));
            }
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let (Some(op), Some(u), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("line {}: expected '+|- u v'", lineno + 1));
        };
        let u: u32 = u
            .parse()
            .map_err(|_| format!("line {}: bad vertex {u:?}", lineno + 1))?;
        let v: u32 = v
            .parse()
            .map_err(|_| format!("line {}: bad vertex {v:?}", lineno + 1))?;
        match op {
            "+" => ins.push((u, v)),
            "-" => del.push((u, v)),
            _ => return Err(format!("line {}: unknown op {op:?}", lineno + 1)),
        }
    }
    if !ins.is_empty() || !del.is_empty() {
        batches.push(EditBatch::from_lists(ins, del));
    }
    Ok(batches)
}

fn cmd_stream(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [graph_path, edits_path] = pos[..] else {
        return Err("stream needs a graph file and an edits file".into());
    };
    let graph = load_binary_graph(Path::new(graph_path))?;
    let iterations: usize = opt_parse(&options, "iterations", 200)?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let detect_every: usize = opt_parse(&options, "detect-every", 1)?;
    let file = std::fs::File::open(edits_path)?;
    let batches = parse_edit_batches(std::io::BufReader::new(file))?;
    let mut detector = RslpaDetector::new(graph, RslpaConfig::quick(iterations, seed));
    println!(
        "initial: {} vertices, {} edges, {} communities",
        detector.graph().num_vertices(),
        detector.graph().num_edges(),
        detector.detect().result.cover.len()
    );
    for (i, batch) in batches.iter().enumerate() {
        // Grow the id space if the batch references fresh vertices.
        let max_id = batch
            .insertions()
            .iter()
            .chain(batch.deletions())
            .flat_map(|&(u, v)| [u, v])
            .max()
            .unwrap_or(0);
        detector.ensure_vertices(max_id as usize + 1);
        let report = detector.apply_batch(batch)?;
        print!(
            "batch {:>3}: {:>6} edits, repaired {:>8} slots ({} repicks, {} deliveries)",
            i + 1,
            batch.len(),
            report.eta,
            report.repicks,
            report.deliveries
        );
        if (i + 1) % detect_every == 0 {
            let cover = detector.detect().result.cover;
            print!(", {} communities", cover.len());
        }
        println!();
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let (pos, options) = split_options(args);
    let [kind, size] = pos[..] else {
        return Err("generate needs a kind (lfr|rmat|ba) and a size".into());
    };
    let n: usize = size.parse().map_err(|_| format!("bad size {size:?}"))?;
    let seed: u64 = opt_parse(&options, "seed", 42)?;
    let graph = match kind {
        "lfr" => {
            let instance = LfrParams {
                seed,
                ..LfrParams::scaled(n)
            }
            .generate()?;
            eprintln!(
                "planted {} communities ({} overlapping vertices), mixing {:.3}",
                instance.ground_truth.len(),
                instance.ground_truth.num_overlapping(n),
                instance.achieved_mixing
            );
            if let Some(truth_path) = options.get("truth") {
                let mut f = std::io::BufWriter::new(std::fs::File::create(truth_path)?);
                for c in instance.ground_truth.communities() {
                    let line: Vec<String> = c.iter().map(u32::to_string).collect();
                    writeln!(f, "{}", line.join(" "))?;
                }
            }
            instance.graph
        }
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            rmat(&RmatParams::web(scale, seed))
        }
        "ba" => barabasi_albert(n, 5, seed),
        other => return Err(format!("unknown generator {other:?}").into()),
    };
    match options.get("out") {
        Some(path) => {
            write_edge_list(&graph, std::fs::File::create(path)?)?;
            eprintln!(
                "wrote {} vertices, {} edges to {path}",
                graph.num_vertices(),
                graph.num_edges()
            );
        }
        None => write_edge_list(&graph, std::io::stdout().lock())?,
    }
    Ok(())
}
