//! Classic NMI for disjoint partitions.
//!
//! Danon et al. (2005) normalization: `2·I(X;Y) / (H(X) + H(Y))`. Used as a
//! cross-check of the overlapping variant on disjoint covers, and for the
//! LPA baseline which only emits partitions.

use rslpa_graph::{Cover, FxHashMap};

/// NMI between two *partitions* given as per-vertex labels of equal length.
///
/// Labels are arbitrary ids (need not be dense). Returns 1.0 for identical
/// partitions (up to relabeling), 0.0 for independent ones. Two all-equal
/// (zero-entropy) partitions score 1 by convention.
pub fn partition_nmi(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must align");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;
    let mut count_a: FxHashMap<u32, usize> = FxHashMap::default();
    let mut count_b: FxHashMap<u32, usize> = FxHashMap::default();
    let mut joint: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    for i in 0..n {
        *count_a.entry(a[i]).or_insert(0) += 1;
        *count_b.entry(b[i]).or_insert(0) += 1;
        *joint.entry((a[i], b[i])).or_insert(0) += 1;
    }
    let entropy = |counts: &FxHashMap<u32, usize>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.log2()
            })
            .sum()
    };
    let ha = entropy(&count_a);
    let hb = entropy(&count_b);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial partitions: identical by convention
    }
    let mut mi = 0.0;
    for (&(la, lb), &c) in &joint {
        let pxy = c as f64 / nf;
        let px = count_a[&la] as f64 / nf;
        let py = count_b[&lb] as f64 / nf;
        mi += pxy * (pxy / (px * py)).log2();
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Partition NMI between two disjoint covers over `n` vertices.
///
/// Panics if either cover overlaps or leaves vertices uncovered — use
/// [`crate::overlapping_nmi`] for general covers.
pub fn partition_nmi_covers(a: &Cover, b: &Cover, n: usize) -> f64 {
    let to_labels = |c: &Cover| -> Vec<u32> {
        let m = c.memberships(n);
        m.iter()
            .enumerate()
            .map(|(v, ms)| {
                assert!(
                    ms.len() == 1,
                    "vertex {v} has {} memberships; not a partition",
                    ms.len()
                );
                ms[0]
            })
            .collect()
    };
    partition_nmi(&to_labels(a), &to_labels(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_up_to_relabeling() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![7, 7, 3, 3, 9, 9];
        assert!((partition_nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_low() {
        // Perfectly crossed 2x2 design: labels independent.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        assert!(partition_nmi(&a, &b) < 1e-9);
    }

    #[test]
    fn refinement_scores_between() {
        let coarse = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let fine = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let s = partition_nmi(&coarse, &fine);
        assert!(s > 0.5 && s < 1.0, "refinement score {s}");
    }

    #[test]
    fn trivial_partitions() {
        assert_eq!(partition_nmi(&[5, 5, 5], &[2, 2, 2]), 1.0);
        assert_eq!(partition_nmi(&[], &[]), 1.0);
    }

    #[test]
    fn covers_path() {
        let a = Cover::new(vec![vec![0, 1], vec![2, 3]]);
        let b = Cover::new(vec![vec![0, 1], vec![2, 3]]);
        assert!((partition_nmi_covers(&a, &b, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a partition")]
    fn overlapping_cover_rejected() {
        let a = Cover::new(vec![vec![0, 1], vec![1, 2]]);
        let _ = partition_nmi_covers(&a, &a, 3);
    }

    #[test]
    fn symmetric() {
        let a = vec![0, 0, 1, 2, 2, 1];
        let b = vec![1, 0, 1, 2, 2, 2];
        assert!((partition_nmi(&a, &b) - partition_nmi(&b, &a)).abs() < 1e-12);
    }
}
