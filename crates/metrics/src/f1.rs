//! Average best-match F1 between covers.
//!
//! A secondary quality measure (Yang & Leskovec 2013 style): each community
//! is matched to its best F1 counterpart in the other cover, averaged both
//! ways. Less principled than NMI but more interpretable; used in
//! experiment reports alongside NMI.

use rslpa_graph::{Cover, FxHashMap};

/// F1 of two vertex sets given their sizes and intersection.
#[inline]
fn f1(size_a: usize, size_b: usize, common: usize) -> f64 {
    if common == 0 {
        return 0.0;
    }
    let p = common as f64 / size_b as f64;
    let r = common as f64 / size_a as f64;
    2.0 * p * r / (p + r)
}

/// Mean over `a`'s communities of the best F1 against any community of `b`.
fn one_sided_f1(a: &Cover, b: &Cover, n: usize) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let b_memberships = b.memberships(n);
    let mut acc = 0.0;
    for ca in a.communities() {
        let mut common: FxHashMap<u32, usize> = FxHashMap::default();
        for &v in ca {
            for &l in &b_memberships[v as usize] {
                *common.entry(l).or_insert(0) += 1;
            }
        }
        let best = common
            .iter()
            .map(|(&l, &cnt)| f1(ca.len(), b.communities()[l as usize].len(), cnt))
            .fold(0.0, f64::max);
        acc += best;
    }
    acc / a.len() as f64
}

/// Symmetric average F1 between covers over `n` vertices; in `[0, 1]`,
/// 1 iff identical.
pub fn avg_f1(a: &Cover, b: &Cover, n: usize) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    0.5 * (one_sided_f1(a, b, n) + one_sided_f1(b, a, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(cs: &[&[u32]]) -> Cover {
        Cover::new(cs.iter().map(|c| c.to_vec()))
    }

    #[test]
    fn identical_covers_score_one() {
        let a = cover(&[&[0, 1, 2], &[3, 4]]);
        assert!((avg_f1(&a, &a, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_covers_score_zero() {
        let a = cover(&[&[0, 1]]);
        let b = cover(&[&[2, 3]]);
        assert_eq!(avg_f1(&a, &b, 4), 0.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let a = cover(&[&[0, 1, 2, 3]]);
        let b = cover(&[&[2, 3, 4, 5]]);
        let s = avg_f1(&a, &b, 6);
        assert!(
            (s - 0.5).abs() < 1e-12,
            "F1 of half-overlapping equal-size sets is 0.5, got {s}"
        );
    }

    #[test]
    fn symmetric() {
        let a = cover(&[&[0, 1, 2], &[3, 4, 5]]);
        let b = cover(&[&[0, 1], &[2, 3, 4, 5]]);
        assert!((avg_f1(&a, &b, 6) - avg_f1(&b, &a, 6)).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions_match_nmi() {
        let a = cover(&[&[0]]);
        let e = Cover::default();
        assert_eq!(avg_f1(&e, &e, 1), 1.0);
        assert_eq!(avg_f1(&a, &e, 1), 0.0);
    }

    #[test]
    fn extra_noise_community_lowers_score() {
        let truth = cover(&[&[0, 1, 2], &[3, 4, 5]]);
        let noisy = cover(&[&[0, 1, 2], &[3, 4, 5], &[0, 3]]);
        assert!(avg_f1(&truth, &noisy, 6) < 1.0);
    }
}
