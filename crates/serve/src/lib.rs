//! # rslpa-serve — live community serving over a mutating graph
//!
//! The paper's deployment story (§V-B3) is "let the algorithm handle
//! changes continuously, and calculate the communities once per hour".
//! This crate turns that sentence into a subsystem: a long-lived
//! in-memory service that ingests edge edits while answering community
//! queries, with the two sides decoupled so neither waits on the other.
//!
//! ## Architecture
//!
//! ```text
//!  writers ──▶ EditQueue ──▶ coordinator ──▶ router ─┬▶ shard worker 0 ─┐
//!             (micro-batch    net-resolve   (deltas  ├▶ shard worker 1  │ boundary
//!              per policy)    + growth)     by owner)└▶ shard worker N  │ exchange
//!                                  │                  ▲ Unrecord/Fetch/Value
//!                                  │                  └─────rounds──────┘
//!                                  │ slot deltas per flush (piggybacked)
//!                                  ▼
//!                        IncrementalPostprocess ──▶ snapshot ──▶ SnapshotStore
//!                        (streaming edge-weight     assembly     (epoch chain)
//!                         counters; publish reads                     │
//!                         weights, never re-merges)                   │
//!  readers ◀─────────────────── lock-free refresh ◀──────────────────┘
//! ```
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the full
//! layer-by-layer book, including the counter invariant and a worked
//! example.
//!
//! * [`queue`] — MPSC ingestion queue carrying [`EditOp`]s, barriers, and
//!   shutdown, in submission order.
//! * [`policy`] — pluggable micro-batching: flush by size, by deadline,
//!   per-edit, or only at explicit barriers.
//! * [`maintain`] — the maintenance coordinator; folds op soup into valid
//!   [`EditBatch`](rslpa_graph::EditBatch)es (net-effect resolution),
//!   repairs the label state through the engine, streams the repair's
//!   slot changes into the edge-weight counter store, and publishes
//!   snapshots by reading weights off exact integer counters (no
//!   histogram is ever re-merged for a surviving edge).
//! * `shards` (internal) — the repair engine: a single-writer
//!   [`RslpaDetector`](rslpa_core::RslpaDetector) at `shards = 1` (the
//!   default), or per-partition workers exchanging boundary corrections
//!   and re-partitioned around each published cover at `shards > 1`.
//!   Rosters are bit-identical across shard counts.
//! * [`snapshot`] — versioned immutable [`CommunitySnapshot`]s linked into
//!   an epoch chain; readers advance with atomic loads only and can pin
//!   any epoch indefinitely.
//! * [`query`] — vertex membership, community roster, vertex overlap, and
//!   epoch-to-epoch membership diffs, all latency-accounted.
//! * [`stats`] — wait-free histograms + counters (global, per-shard, and
//!   boundary-exchange); p50/p99 summaries resolved to log₂-bucket
//!   geometric means.
//!
//! The facade is [`CommunityService`]; see its docs for a runnable
//! example.

pub(crate) mod hubs;
pub mod maintain;
pub mod policy;
pub mod query;
pub mod queue;
pub mod service;
pub(crate) mod shards;
pub mod snapshot;
pub mod stats;

pub use policy::{BarrierOnly, ByDeadline, BySize, FlushPolicy, Immediate};
pub use query::QueryEngine;
pub use queue::EditOp;
pub use service::{
    CommunityService, ExchangeMode, IngestHandle, ServeConfig, ServiceClosed, TraceOptions,
};

// Re-exported so callers can tune serve-path damping without a direct
// `rslpa_core` dependency.
pub use rslpa_core::DampingConfig;
pub use snapshot::{
    fingerprint_weights, membership_diff, CommunitySnapshot, MembershipDiff, SnapshotReader,
    SnapshotStore,
};
pub use stats::{
    HistogramSnapshot, LatencyHistogram, LatencySummary, QualityWindow, ServeStats, ShardCounts,
    StatsReport,
};

// Re-exported so downstream crates (the CLI, the bench harness) can drive
// the flight recorder without a direct `rslpa_trace` dependency.
pub use rslpa_trace as trace;
