//! Property: streaming [`EdgeCounters`] fed by shard-emitted
//! [`SlotDelta`]s equal a fresh `edge_weights` merge — bit for bit —
//! after an arbitrary interleaving of slot updates (driven by random
//! edge insertions/deletions through Correction Propagation), eager edge
//! deletions, and mid-stream shard row migrations, at both 1 and 4
//! shards.
//!
//! Two harnesses pin it:
//!
//! * the **central-store** harness (PR 4's acceptance property): the
//!   coordinator-relayed exchange loop feeds one central [`EdgeCounters`];
//! * the **mesh + partition** harness (PR 5's): real worker threads
//!   deliver envelopes peer-to-peer over a [`build_mesh`] and each shard
//!   folds its own deltas into its own [`CounterPartition`]; publish
//!   barriers assemble interior counters + boundary-histogram merges via
//!   [`assemble_partitioned_weights`]. Each publish also runs the
//!   **dirty-diff** collect (ship only changed boundary histograms onto
//!   a persistent coordinator cache, evicted on migration) and asserts
//!   it assembles the identical weight list.
//!
//! Both must equal the centralized repair engine plus the full merge
//! pass, under random edit/migration/barrier interleavings — any drift
//! would silently corrupt every published snapshot.

use std::sync::Arc;

use proptest::prelude::*;
use rslpa_core::postprocess::edge_weights;
use rslpa_core::shard::{build_mesh, Envelope, ShardRepairState};
use rslpa_core::{
    apply_correction, assemble_partitioned_weights, run_propagation, CounterPartition, EdgeCounters,
};
use rslpa_graph::{
    compact_slot_deltas, AdjacencyGraph, DynamicGraph, EditBatch, FxHashMap, FxHashSet,
    HashPartitioner, Label, Partitioner, SlotDelta, VertexId,
};

/// Vertex-id space: three 4-cliques (0..12) plus two initially isolated
/// vertices that rounds may attach (the fresh-vertex path).
const N: u32 = 14;
const T_MAX: usize = 8;

fn seed_graph() -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(N as usize);
    for base in [0u32, 4, 8] {
        for i in base..base + 4 {
            for j in (i + 1)..base + 4 {
                g.insert_edge(i, j);
            }
        }
    }
    g.insert_edge(3, 4);
    g.insert_edge(7, 8);
    g
}

/// Split arbitrary candidate pairs into a batch valid against `g`:
/// present edges become deletions, absent ones insertions.
fn batch_against(g: &AdjacencyGraph, pairs: &[(VertexId, VertexId)]) -> EditBatch {
    let mut ins = Vec::new();
    let mut del = Vec::new();
    let mut seen = FxHashSet::default();
    for &(u, v) in pairs {
        if u == v || !seen.insert((u.min(v), u.max(v))) {
            continue;
        }
        if g.has_edge(u, v) {
            del.push((u, v));
        } else {
            ins.push((u, v));
        }
    }
    EditBatch::from_lists(ins, del)
}

/// One sharded flush: route deltas, Phase A everywhere, pump exchange
/// rounds to quiescence, drain the slot-delta stream in shard order.
fn sharded_flush(
    shards: &mut [ShardRepairState],
    partitioner: &dyn Partitioner,
    applied: &rslpa_graph::AppliedBatch,
) -> Vec<SlotDelta> {
    let per_shard = rslpa_graph::sharding::split_deltas(applied, partitioner);
    let mut outbox = Vec::new();
    for (shard, deltas) in shards.iter_mut().zip(&per_shard) {
        shard.apply_deltas(deltas, &mut outbox);
    }
    while !outbox.is_empty() {
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); shards.len()];
        for env in outbox.drain(..) {
            inboxes[partitioner.assign(env.to)].push(env);
        }
        for (shard, inbox) in shards.iter_mut().zip(inboxes) {
            if !inbox.is_empty() {
                shard.exchange(inbox, &mut outbox);
            }
        }
    }
    let mut deltas = Vec::new();
    for shard in shards.iter_mut() {
        deltas.extend(shard.take_slot_deltas());
    }
    deltas
}

/// Migrate every row whose owner changes under `next` (the coordinator's
/// publish-time repartition, between flushes).
fn migrate(
    shards: &mut [ShardRepairState],
    old: &Arc<dyn Partitioner>,
    next: &Arc<dyn Partitioner>,
) {
    let parts = shards.len();
    let mut in_flight: Vec<Vec<(VertexId, rslpa_core::VertexRowData)>> = vec![Vec::new(); parts];
    for shard in shards.iter_mut() {
        let leaving: Vec<VertexId> = (0..N)
            .filter(|&v| old.assign(v) == shard.shard() && next.assign(v) != shard.shard())
            .collect();
        for (v, row) in shard.extract_rows(&leaving) {
            in_flight[next.assign(v)].push((v, row));
        }
    }
    for (shard, rows) in shards.iter_mut().zip(in_flight) {
        shard.set_partitioner(Arc::clone(next));
        shard.adopt_rows(rows);
    }
}

fn assert_weights_equal(a: &[(VertexId, VertexId, f64)], b: &[(VertexId, VertexId, f64)]) {
    assert_eq!(a.len(), b.len(), "edge counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.0, x.1), (y.0, y.1), "edge order drifted");
        assert_eq!(x.2.to_bits(), y.2.to_bits(), "weight drifted at {x:?}");
    }
}

/// Run one generated script at the given shard count.
fn exercise(seed: u64, rounds: &[(Vec<(VertexId, VertexId)>, u8)], parts: usize) {
    let mut dg = DynamicGraph::new(seed_graph());
    let mut central = run_propagation(dg.graph(), T_MAX, seed);
    let mut partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
    let mut shards: Vec<ShardRepairState> = (0..parts)
        .map(|s| ShardRepairState::from_state(&central, dg.graph(), s, Arc::clone(&partitioner)))
        .collect();
    let mut counters = EdgeCounters::new(&central);
    counters.refresh_weights(dg.graph(), 1);

    for (round, (pairs, control)) in rounds.iter().enumerate() {
        if control & 1 != 0 {
            // Mid-stream row migration (between flushes, deltas drained).
            let next: Arc<dyn Partitioner> =
                Arc::new(HashPartitioner::with_seed(parts, round as u64 + 1));
            migrate(&mut shards, &partitioner, &next);
            partitioner = next;
        }
        let batch = batch_against(dg.graph(), pairs);
        if batch.is_empty() {
            continue;
        }
        let applied = dg.apply(&batch).expect("batch built to validate");
        apply_correction(&mut central, dg.graph(), &applied, false);
        let deltas = sharded_flush(&mut shards, partitioner.as_ref(), &applied);

        // Feed the counter store the way the serve loop does: eager
        // deletion retirement, then the compacted slot-delta stream.
        for &(u, v) in batch.deletions() {
            counters.delete_edge(u, v);
        }
        for d in compact_slot_deltas(&deltas) {
            counters.apply_slot_delta(dg.graph(), d);
        }
        if control & 2 != 0 {
            assert_weights_equal(
                &counters.refresh_weights(dg.graph(), 1),
                &edge_weights(dg.graph(), &central),
            );
        }
    }
    // Always compare at the end of the script.
    assert_weights_equal(
        &counters.refresh_weights(dg.graph(), 1),
        &edge_weights(dg.graph(), &central),
    );
}

/// The dirty-diff collect the mailbox engine runs at publish: every shard
/// ships only boundary histograms changed since its last ship (plus
/// first-time boundary entrants) and the coordinator overlays them onto a
/// persistent `cache`. The assembled weight list must be bit-identical to
/// the full-ship path's — that is the coherence contract between the
/// worker-side `shipped`/`dirty` sets and the coordinator cache.
fn assemble_dirty(
    shards: &[ShardRepairState],
    partitions: &mut [CounterPartition],
    cache: &mut FxHashMap<VertexId, Vec<(Label, u32)>>,
    graph: &AdjacencyGraph,
    p: &Arc<dyn Partitioner>,
) -> Vec<(VertexId, VertexId, f64)> {
    let interior: Vec<Vec<(VertexId, VertexId, u64)>> = shards
        .iter()
        .zip(partitions.iter_mut())
        .map(|(rows, part)| part.collect_interior(rows))
        .collect();
    for (rows, part) in shards.iter().zip(partitions.iter_mut()) {
        let mut out = Vec::new();
        let report = part.dirty_boundary_hists_into(rows, &mut out);
        assert!(
            report.shipped <= report.dirty,
            "shipped {} histograms but only {} were dirty-marked",
            report.shipped,
            report.dirty
        );
        assert!(
            report.shipped <= report.boundary,
            "shipped {} histograms off a {}-vertex boundary",
            report.shipped,
            report.boundary
        );
        for (v, hist) in out {
            cache.insert(v, hist);
        }
    }
    let p = Arc::clone(p);
    assemble_partitioned_weights(graph, move |v| p.assign(v), T_MAX + 1, &interior, cache)
}

/// The PR 5 harness: peer-to-peer delivery over a real threaded mesh,
/// shard-owned counter upkeep, publish-barrier assembly. One script run
/// at `parts` shards; migrations re-partition rows *and* counter slices;
/// every `control & 2` round is a publish barrier comparing the
/// assembled weight list against the centralized reference bit for bit.
fn exercise_mesh(seed: u64, rounds: &[(Vec<(VertexId, VertexId)>, u8)], parts: usize) {
    let mut dg = DynamicGraph::new(seed_graph());
    let mut central = run_propagation(dg.graph(), T_MAX, seed);
    let mut partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
    let mut shards: Vec<ShardRepairState> = (0..parts)
        .map(|s| ShardRepairState::from_state(&central, dg.graph(), s, Arc::clone(&partitioner)))
        .collect();
    // Partition slices carved from a genesis-refreshed central store —
    // the serve bootstrap path.
    let mut genesis = EdgeCounters::new(&central);
    genesis.refresh_weights(dg.graph(), 1);
    let mut partitions: Vec<CounterPartition> = shards
        .iter()
        .map(|rows| CounterPartition::carve(&genesis, rows))
        .collect();
    let mut ports = build_mesh(parts);
    // Coordinator-side boundary-histogram cache for the dirty-diff
    // collect, persistent across publishes, evicted on migration.
    let mut cache: FxHashMap<VertexId, Vec<(Label, u32)>> = FxHashMap::default();

    let assemble = |shards: &[ShardRepairState],
                    partitions: &mut [CounterPartition],
                    graph: &AdjacencyGraph,
                    p: &Arc<dyn Partitioner>| {
        let interior: Vec<Vec<(VertexId, VertexId, u64)>> = shards
            .iter()
            .zip(partitions.iter_mut())
            .map(|(rows, part)| part.collect_interior(rows))
            .collect();
        let mut boundary: FxHashMap<VertexId, Vec<(Label, u32)>> = FxHashMap::default();
        for (rows, part) in shards.iter().zip(partitions.iter_mut()) {
            for (v, hist) in part.boundary_hists(rows) {
                boundary.insert(v, hist);
            }
        }
        let p = Arc::clone(p);
        assemble_partitioned_weights(graph, move |v| p.assign(v), T_MAX + 1, &interior, &boundary)
    };

    for (round, (pairs, control)) in rounds.iter().enumerate() {
        if control & 1 != 0 {
            // Mid-stream migration: rows move, counter slices follow the
            // ownership rule (drop incident counters, recompute adopted
            // histograms from the migrated rows).
            let next: Arc<dyn Partitioner> =
                Arc::new(HashPartitioner::with_seed(parts, round as u64 + 1));
            let mut in_flight: Vec<Vec<(VertexId, rslpa_core::VertexRowData)>> =
                vec![Vec::new(); parts];
            for (shard, partition) in shards.iter_mut().zip(partitions.iter_mut()) {
                let leaving: Vec<VertexId> = (0..N)
                    .filter(|&v| {
                        partitioner.assign(v) == shard.shard() && next.assign(v) != shard.shard()
                    })
                    .collect();
                partition.drop_vertices(&leaving);
                // The coordinator invalidates its cache for migrating
                // vertices; the adopter marks them dirty and re-ships.
                for v in &leaving {
                    cache.remove(v);
                }
                for (v, row) in shard.extract_rows(&leaving) {
                    in_flight[next.assign(v)].push((v, row));
                }
            }
            for ((shard, partition), rows) in
                shards.iter_mut().zip(partitions.iter_mut()).zip(in_flight)
            {
                shard.set_partitioner(Arc::clone(&next));
                for (v, data) in &rows {
                    partition.adopt_hist(*v, &data.labels);
                }
                shard.adopt_rows(rows);
            }
            partitioner = next;
        }
        let batch = batch_against(dg.graph(), pairs);
        if batch.is_empty() {
            continue;
        }
        let applied = dg.apply(&batch).expect("batch built to validate");
        apply_correction(&mut central, dg.graph(), &applied, false);

        // Interior deleted-edge counters retire eagerly, like the serve
        // worker does from its routed removal deltas.
        for (shard, partition) in shards.iter().zip(partitions.iter_mut()) {
            for &(u, v) in batch.deletions() {
                if shard.owns(u) && shard.owns(v) {
                    partition.retire_edge(u, v);
                }
            }
        }
        // Phase A + p2p exchange on real threads, then shard-owned
        // upkeep inside each worker.
        let per_shard = rslpa_graph::sharding::split_deltas(&applied, partitioner.as_ref());
        std::thread::scope(|s| {
            for (((shard, partition), port), deltas) in shards
                .iter_mut()
                .zip(partitions.iter_mut())
                .zip(ports.iter_mut())
                .zip(&per_shard)
            {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut report = shard.apply_deltas(deltas, &mut out);
                    port.exchange_to_quiescence(shard, out, &mut report);
                    let deltas = shard.take_slot_deltas();
                    partition.apply_own_deltas(shard, &deltas);
                });
            }
        });
        if control & 2 != 0 {
            // Publish barrier: assembled partitioned weights must equal a
            // fresh merge of the centralized state — via the full-ship
            // path and via the dirty-diff + cache path.
            let reference = edge_weights(dg.graph(), &central);
            assert_weights_equal(
                &assemble(&shards, &mut partitions, dg.graph(), &partitioner),
                &reference,
            );
            assert_weights_equal(
                &assemble_dirty(
                    &shards,
                    &mut partitions,
                    &mut cache,
                    dg.graph(),
                    &partitioner,
                ),
                &reference,
            );
        }
    }
    let reference = edge_weights(dg.graph(), &central);
    assert_weights_equal(
        &assemble(&shards, &mut partitions, dg.graph(), &partitioner),
        &reference,
    );
    assert_weights_equal(
        &assemble_dirty(
            &shards,
            &mut partitions,
            &mut cache,
            dg.graph(),
            &partitioner,
        ),
        &reference,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_counters_equal_fresh_merge_under_interleaving(
        seed in 0u64..64,
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u32..N, 0u32..N), 1..8), 0u8..4),
            1..8,
        ),
    ) {
        for parts in [1usize, 4] {
            exercise(seed, &rounds, parts);
        }
    }

    #[test]
    fn mesh_delivery_and_shard_owned_upkeep_equal_centralized(
        seed in 0u64..64,
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u32..N, 0u32..N), 1..8), 0u8..4),
            1..8,
        ),
    ) {
        for parts in [1usize, 4] {
            exercise_mesh(seed, &rounds, parts);
        }
    }
}
