//! Algorithm 2 — Correction Propagation (centralized semantics).
//!
//! After an edit batch, every affected vertex re-examines its `T` picks
//! (paper §IV-A):
//!
//! * **Category 1** (neighborhood unchanged): nothing to do — such
//!   vertices never appear in the batch deltas.
//! * **Category 2** (only lost neighbors): a pick whose source edge was
//!   deleted is re-drawn uniformly from the remaining neighbors; surviving
//!   picks are kept (Theorem 4: they are still uniform on the new set).
//! * **Category 3** (gained neighbors, possibly lost some): picks through
//!   deleted edges re-draw from all current neighbors; surviving picks are
//!   kept with probability `n_u / (n_u + n_a)` and otherwise re-drawn from
//!   the **new** neighbors only (Theorem 5 shows the composite is uniform
//!   on the new neighborhood).
//!
//! Then changes cascade (§IV-B): when `l_v^t` is updated, every receiver
//! recorded in `R_v^t` updates its own slot and forwards in turn. The
//! paper's Algorithm 2 forwards *unconditionally* (lines 18–22 carry no
//! value comparison) — that unpruned cascade is what the §IV-D analysis
//! counts, so it is the default here; `value_pruned` stops at
//! value-identical updates as a measured ablation.
//!
//! Because every slot's receivers sit at strictly later iterations, one
//! ascending sweep over iteration buckets delivers every correction
//! exactly once.
//!
//! ## Degree-capped cascade damping
//!
//! A forming hub turns every edit into an `O(hub-degree)` re-spray: each
//! delivery at the hub forwards through *all* of its recorded receivers,
//! which is exactly the flash-crowd blowup the churn suite measured.
//! With a [`DampingConfig`], a vertex whose degree exceeds the cap is
//! **muted as a label source**:
//!
//! * forwarding out of it is suppressed for the rest of the flush, and
//!   the changed slot is parked in the [`CascadeDamper`];
//! * a re-pick that lands on one of its slots keeps the listener's own
//!   previous value (the classic hub-resistance move — a thousand fresh
//!   spokes must not all echo the hub), and the slot is parked so the
//!   new record is re-delivered once the hub calms down;
//! * fetch replies in the sharded engines are suppressed the same way,
//!   so the requester keeps its value by silence.
//!
//! Parked slots are released only once the vertex's degree is back at or
//! under the cap, under a per-hub delivery budget in ascending (vertex,
//! slot) order — a canonical schedule every engine reproduces — and the
//! release cascades normally from there. The damped fixed point after
//! each flush is therefore the same pure function of the batch sequence
//! regardless of shard count or exchange transport, and once every
//! parked vertex has dropped under the cap and drained, the state
//! converges to the undamped fixed point (picks are label-independent,
//! so only label values ever lag).

use rslpa_graph::rng::{PickKey, Stream};
use rslpa_graph::{AdjacencyGraph, AppliedBatch, FxHashSet, Label, SlotDelta, VertexId};

use crate::config::DampingConfig;
use crate::propagation::draw_pick;
use crate::state::{LabelState, NO_SOURCE};

/// Deferred-cascade state for the centralized engine: per muted hub
/// vertex, the slots whose receivers may be out of date — because the
/// slot changed while the hub was over the cap, or because a listener
/// re-picked onto it and kept its own value instead. Owned by
/// [`RslpaDetector`](crate::RslpaDetector) and threaded through
/// [`apply_correction_damped`].
#[derive(Clone, Debug, Default)]
pub struct CascadeDamper {
    config: DampingConfig,
    /// vertex → sorted slots needing re-delivery once the vertex drops
    /// back under the cap.
    pending: rslpa_graph::FxHashMap<VertexId, Vec<u32>>,
}

impl CascadeDamper {
    /// A damper enforcing `config`.
    pub fn new(config: DampingConfig) -> Self {
        Self {
            config,
            pending: Default::default(),
        }
    }

    /// The cap/budget this damper enforces.
    pub fn config(&self) -> DampingConfig {
        self.config
    }

    /// Is a vertex of this degree past the cap?
    #[inline]
    pub fn over_cap(&self, deg: usize) -> bool {
        deg > self.config.degree_cap
    }

    /// Vertices with at least one parked slot.
    pub fn pending_vertices(&self) -> usize {
        self.pending.len()
    }

    /// Mark `(v, t)` as needing re-delivery on unmute: either its value
    /// changed while `v` was over the cap, or a listener re-picked onto
    /// it and kept its own value.
    fn park(&mut self, v: VertexId, t: u32) {
        let slots = self.pending.entry(v).or_default();
        if let Err(i) = slots.binary_search(&t) {
            slots.insert(i, t);
        }
    }

    /// Forget a parked slot (its receivers are up to date again — the
    /// slot was forwarded normally after the vertex dropped below the
    /// cap, or a release just delivered it).
    fn clear(&mut self, v: VertexId, t: u32) {
        if let Some(slots) = self.pending.get_mut(&v) {
            if let Ok(i) = slots.binary_search(&t) {
                slots.remove(i);
                if slots.is_empty() {
                    self.pending.remove(&v);
                }
            }
        }
    }

    /// Might a parked slot still hide a value from its receivers?
    /// (While true, the state may be inconsistent in the
    /// `check_consistency` sense; parked slots don't record the
    /// receiver-held values, so this is conservatively any pending
    /// work at all.)
    pub fn masks_inconsistency(&self, _state: &LabelState) -> bool {
        !self.pending.is_empty()
    }
}

/// Work accounting for one incremental repair — the measured counterpart
/// of §IV-D's η.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Vertices whose neighborhood changed (Categories 2–3).
    pub affected_vertices: usize,
    /// Picks re-drawn in the adjacent-edge phase.
    pub repicks: usize,
    /// Category-3 keep/redraw coins flipped.
    pub coins: usize,
    /// Corrections delivered through receiver records.
    pub deliveries: usize,
    /// Distinct label slots updated (η: repicked or corrected).
    pub eta: usize,
    /// Deliveries whose value actually differed (≤ `deliveries`).
    pub value_changes: usize,
    /// Suppressions at over-cap vertices: receiver re-sprays deferred
    /// plus re-pick reads that kept the listener's own value (damping
    /// only; always 0 without a [`CascadeDamper`]).
    pub damped_deferrals: usize,
}

/// Apply Correction Propagation to `state` for a batch already applied to
/// the graph (`graph_after` is the post-edit topology, `applied` the
/// per-vertex deltas).
pub fn apply_correction(
    state: &mut LabelState,
    graph_after: &AdjacencyGraph,
    applied: &AppliedBatch,
    value_pruned: bool,
) -> UpdateReport {
    let mut dirty = FxHashSet::default();
    apply_correction_tracked(state, graph_after, applied, value_pruned, &mut dirty)
}

/// [`apply_correction`] that additionally records every vertex whose label
/// *value* changed into `dirty` — the input set for dirty-region
/// post-processing (a vertex whose histogram is unchanged cannot change
/// any edge weight).
pub fn apply_correction_tracked(
    state: &mut LabelState,
    graph_after: &AdjacencyGraph,
    applied: &AppliedBatch,
    value_pruned: bool,
    dirty: &mut FxHashSet<VertexId>,
) -> UpdateReport {
    let mut deltas = Vec::new();
    apply_correction_streaming(
        state,
        graph_after,
        applied,
        value_pruned,
        dirty,
        &mut deltas,
    )
}

/// [`apply_correction_tracked`] that additionally emits one [`SlotDelta`]
/// per label-slot *value* change, in application order — the input stream
/// for [`EdgeCounters`](crate::edge_counters::EdgeCounters). A slot
/// rewritten several times in one repair emits one delta per rewrite
/// (callers compact with
/// [`compact_slot_deltas`](rslpa_graph::compact_slot_deltas) before
/// paying `O(deg)` per delta); unchanged-value writes emit nothing, so
/// the stream is exactly the histogram movement of this repair.
pub fn apply_correction_streaming(
    state: &mut LabelState,
    graph_after: &AdjacencyGraph,
    applied: &AppliedBatch,
    value_pruned: bool,
    dirty: &mut FxHashSet<VertexId>,
    slot_deltas: &mut Vec<SlotDelta>,
) -> UpdateReport {
    apply_correction_damped(
        state,
        graph_after,
        applied,
        value_pruned,
        None,
        dirty,
        slot_deltas,
    )
}

/// [`apply_correction_streaming`] with degree-capped cascade damping.
///
/// With `damper = None` this is bit-for-bit the undamped repair. With a
/// damper, the flush runs in four steps:
///
/// 1. **Release**: pending slots of vertices whose degree dropped back
///    to the cap or under are delivered to their receivers in ascending
///    (vertex, slot) order, at most `flush_budget` deliveries per hub
///    (always at least one slot, so pending work cannot starve).
///    Vertices still over the cap stay parked untouched. Deliveries are
///    staged here (pre-Phase-A receiver records) but applied after Phase
///    A under a pick-staleness guard, mirroring the envelope timing of
///    the sharded engines.
/// 2. **Phase A** as usual, except a re-pick that lands on an over-cap
///    source keeps the listener's previous value (the source slot is
///    parked so the unmute release catches the new record up), and any
///    value change on an over-cap vertex parks the slot.
/// 3. The staged release deliveries apply, scheduling cascades.
/// 4. **Phase B** as usual, except forwarding out of an over-cap vertex
///    is suppressed (counted in `damped_deferrals`); a formerly-capped
///    vertex that dropped back under the cap forwards normally and its
///    parked entry is cleared.
#[allow(clippy::too_many_arguments)]
pub fn apply_correction_damped(
    state: &mut LabelState,
    graph_after: &AdjacencyGraph,
    applied: &AppliedBatch,
    value_pruned: bool,
    mut damper: Option<&mut CascadeDamper>,
    dirty: &mut FxHashSet<VertexId>,
    slot_deltas: &mut Vec<SlotDelta>,
) -> UpdateReport {
    let t_max = state.iterations() as u32;
    let seed = state.seed();
    let mut report = UpdateReport {
        affected_vertices: applied.deltas.len(),
        ..Default::default()
    };
    // Per-iteration buckets of slots to forward from, deduplicated.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); t_max as usize + 1];
    let mut scheduled: FxHashSet<(VertexId, u32)> = FxHashSet::default();
    let mut touched: FxHashSet<(VertexId, u32)> = FxHashSet::default();

    let schedule = |v: VertexId,
                    t: u32,
                    buckets: &mut Vec<Vec<VertexId>>,
                    scheduled: &mut FxHashSet<(VertexId, u32)>| {
        if scheduled.insert((v, t)) {
            buckets[t as usize].push(v);
        }
    };

    // --- Release: drain parked slots of unmuted vertices under the
    // per-hub budget --- Canonical ascending (vertex, slot) order keeps
    // this identical in every engine. A vertex still over the cap stays
    // parked; deliveries are staged against the *pre-Phase-A* receiver
    // records and applied after Phase A with a staleness guard, exactly
    // like a routed envelope in the sharded engines.
    let mut released: Vec<(VertexId, u32, VertexId, u32, Label)> = Vec::new();
    if let Some(d) = damper.as_deref_mut() {
        if !d.pending.is_empty() {
            let budget = d.config.flush_budget.max(1);
            let mut vids: Vec<VertexId> = d.pending.keys().copied().collect();
            vids.sort_unstable();
            for v in vids {
                if d.over_cap(graph_after.neighbors(v).len()) {
                    continue; // still muted: receivers keep waiting
                }
                let slots = d.pending.remove(&v).unwrap_or_default();
                let mut kept: Vec<u32> = Vec::new();
                let mut used = 0usize;
                let mut released_any = false;
                let mut stopped = false;
                for t in slots {
                    if stopped {
                        kept.push(t);
                        continue;
                    }
                    let receivers: Vec<(VertexId, u32)> = state.receivers_of(v, t).collect();
                    if released_any && used + receivers.len() > budget {
                        stopped = true;
                        kept.push(t);
                        continue;
                    }
                    used += receivers.len();
                    released_any = true;
                    let current = state.label(v, t);
                    for (r, k) in receivers {
                        released.push((v, t, r, k, current));
                    }
                }
                if !kept.is_empty() {
                    d.pending.insert(v, kept);
                }
            }
        }
    }

    // --- Phase A: adjacent edge changes (Algorithm 2 lines 1–12) ---
    for v in applied.affected_vertices() {
        let delta = &applied.deltas[&v];
        let nbrs = graph_after.neighbors(v);
        for t in 1..=t_max {
            let (old_src, old_pos) = state.pick(v, t);
            if nbrs.is_empty() {
                // Lost every neighbor: the slot reverts to the own label.
                if old_src != NO_SOURCE {
                    state.remove_record(old_src, old_pos, v, t);
                    state.set_pick(v, t, NO_SOURCE, 0);
                    let own = state.label(v, 0);
                    let old = state.label(v, t);
                    let changed = old != own;
                    state.set_label(v, t, own);
                    report.repicks += 1;
                    touched.insert((v, t));
                    if changed {
                        dirty.insert(v);
                        slot_deltas.push(SlotDelta {
                            v,
                            slot: t,
                            old,
                            new: own,
                        });
                    }
                    if !value_pruned || changed {
                        schedule(v, t, &mut buckets, &mut scheduled);
                    }
                }
                continue;
            }
            let needs_full_repick = if old_src == NO_SOURCE {
                true // was isolated; every neighbor is effectively new
            } else {
                delta.removed_contains(old_src)
            };
            if needs_full_repick {
                repick(
                    state,
                    graph_after,
                    v,
                    t,
                    old_src,
                    old_pos,
                    nbrs,
                    value_pruned,
                    &mut damper,
                    &mut report,
                    &mut touched,
                    dirty,
                    slot_deltas,
                    |v, t| schedule(v, t, &mut buckets, &mut scheduled),
                );
                continue;
            }
            if delta.added.is_empty() {
                continue; // Category 2, source survived: keep (Theorem 4).
            }
            // Category 3, source survived: keep with probability n_u / deg.
            let deg = nbrs.len();
            let na = delta.added.len();
            debug_assert!(na <= deg);
            let epoch = state.bump_epoch(v, t);
            let key = PickKey {
                seed,
                vertex: v,
                iteration: t,
                epoch,
            };
            report.coins += 1;
            if key.unit_f64(Stream::Cat3Coin) < na as f64 / deg as f64 {
                // Redraw from the *new* neighbors only (Theorem 5).
                repick(
                    state,
                    graph_after,
                    v,
                    t,
                    old_src,
                    old_pos,
                    &delta.added,
                    value_pruned,
                    &mut damper,
                    &mut report,
                    &mut touched,
                    dirty,
                    slot_deltas,
                    |v, t| schedule(v, t, &mut buckets, &mut scheduled),
                );
            }
        }
    }

    // --- Apply staged release deliveries (post-Phase-A, like routed
    // envelopes). A pick that Phase A re-drew discards the delivery.
    for (src, t, r, k, l) in released {
        if state.pick(r, k) != (src, t) {
            continue; // receiver re-picked away during Phase A
        }
        report.deliveries += 1;
        let old = state.label(r, k);
        let changed = old != l;
        if changed {
            state.set_label(r, k, l);
            report.value_changes += 1;
            dirty.insert(r);
            slot_deltas.push(SlotDelta {
                v: r,
                slot: k,
                old,
                new: l,
            });
            if let Some(d) = damper.as_deref_mut() {
                if d.over_cap(graph_after.neighbors(r).len()) {
                    d.park(r, k);
                }
            }
        }
        touched.insert((r, k));
        if !value_pruned || changed {
            schedule(r, k, &mut buckets, &mut scheduled);
        }
    }

    // --- Phase B: cascade through receiver records (lines 13–24) ---
    for t in 1..=t_max {
        let bucket = std::mem::take(&mut buckets[t as usize]);
        for v in bucket {
            if let Some(d) = damper.as_deref_mut() {
                if d.over_cap(graph_after.neighbors(v).len()) {
                    // Over the cap: the re-spray is deferred. Any value
                    // change was already parked at its change site.
                    report.damped_deferrals += 1;
                    continue;
                }
                // Back under the cap: forward the current value normally
                // — its receivers are up to date after this, so drop any
                // parked entry.
                d.clear(v, t);
            }
            let l = state.label(v, t);
            // Collect receivers first: delivering mutates the state.
            let receivers: Vec<(VertexId, u32)> = state.receivers_of(v, t).collect();
            for (r, k) in receivers {
                debug_assert!(k > t);
                report.deliveries += 1;
                let old = state.label(r, k);
                let changed = old != l;
                if changed {
                    state.set_label(r, k, l);
                    report.value_changes += 1;
                    dirty.insert(r);
                    slot_deltas.push(SlotDelta {
                        v: r,
                        slot: k,
                        old,
                        new: l,
                    });
                    if let Some(d) = damper.as_deref_mut() {
                        if d.over_cap(graph_after.neighbors(r).len()) {
                            d.park(r, k);
                        }
                    }
                }
                touched.insert((r, k));
                if !value_pruned || changed {
                    schedule(r, k, &mut buckets, &mut scheduled);
                }
            }
        }
    }

    report.eta = touched.len();
    debug_assert!(
        damper
            .as_deref()
            .is_some_and(|d| d.masks_inconsistency(state))
            || crate::verify::check_consistency(state, graph_after).is_ok()
    );
    report
}

/// Re-draw the pick of `(v, t)` uniformly from `candidates`, maintain the
/// reverse records, and schedule the slot for cascade forwarding.
#[allow(clippy::too_many_arguments)]
fn repick(
    state: &mut LabelState,
    graph_after: &AdjacencyGraph,
    v: VertexId,
    t: u32,
    old_src: VertexId,
    old_pos: u32,
    candidates: &[VertexId],
    value_pruned: bool,
    damper: &mut Option<&mut CascadeDamper>,
    report: &mut UpdateReport,
    touched: &mut FxHashSet<(VertexId, u32)>,
    dirty: &mut FxHashSet<VertexId>,
    slot_deltas: &mut Vec<SlotDelta>,
    mut schedule: impl FnMut(VertexId, u32),
) {
    if old_src != NO_SOURCE {
        state.remove_record(old_src, old_pos, v, t);
    }
    let epoch = state.bump_epoch(v, t);
    let (src, pos) = draw_pick(state.seed(), v, t, epoch, candidates);
    state.set_pick(v, t, src, pos);
    state.add_record(src, pos, v, t);
    report.repicks += 1;
    // A muted source (over the degree cap) serves nothing: the listener
    // keeps its previous value, and the source slot is parked so the
    // unmute release catches this record up. The sharded engines do the
    // same by suppressing the fetch reply.
    if let Some(d) = damper.as_deref_mut() {
        if d.over_cap(graph_after.neighbors(src).len()) {
            d.park(src, pos);
            report.damped_deferrals += 1;
            return;
        }
    }
    let new_label = state.label(src, pos);
    let old = state.label(v, t);
    let changed = old != new_label;
    state.set_label(v, t, new_label);
    touched.insert((v, t));
    if changed {
        dirty.insert(v);
        slot_deltas.push(SlotDelta {
            v,
            slot: t,
            old,
            new: new_label,
        });
        if let Some(d) = damper.as_deref_mut() {
            if d.over_cap(graph_after.neighbors(v).len()) {
                d.park(v, t);
            }
        }
    }
    if !value_pruned || changed {
        schedule(v, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::run_propagation;
    use crate::verify::check_consistency;
    use rslpa_graph::{DynamicGraph, EditBatch};

    /// Run a batch through graph + state, returning the report.
    fn step(
        dg: &mut DynamicGraph,
        state: &mut LabelState,
        batch: EditBatch,
        pruned: bool,
    ) -> UpdateReport {
        let applied = dg.apply(&batch).expect("valid batch");
        apply_correction(state, dg.graph(), &applied, pruned)
    }

    fn star_plus_ring() -> AdjacencyGraph {
        // Vertex 0 is a hub over 1..=4; 1-2-3-4-1 ring around it.
        AdjacencyGraph::from_edges(
            5,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ],
        )
    }

    #[test]
    fn consistency_after_single_deletion() {
        for seed in 0..10 {
            let g = star_plus_ring();
            let mut dg = DynamicGraph::new(g);
            let mut state = run_propagation(dg.graph(), 12, seed);
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([], [(0, 3)]),
                false,
            );
            check_consistency(&state, dg.graph()).unwrap();
        }
    }

    #[test]
    fn consistency_after_single_insertion() {
        for seed in 0..10 {
            let g = star_plus_ring();
            let mut dg = DynamicGraph::new(g);
            let mut state = run_propagation(dg.graph(), 12, seed);
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([(1, 3)], []),
                false,
            );
            check_consistency(&state, dg.graph()).unwrap();
        }
    }

    #[test]
    fn consistency_after_mixed_batches_both_modes() {
        for pruned in [false, true] {
            let g = star_plus_ring();
            let mut dg = DynamicGraph::new(g);
            let mut state = run_propagation(dg.graph(), 10, 7);
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([(1, 3)], [(0, 2)]),
                pruned,
            );
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([(2, 4)], [(1, 2), (3, 4)]),
                pruned,
            );
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([(0, 2)], [(2, 4)]),
                pruned,
            );
            check_consistency(&state, dg.graph()).unwrap();
        }
    }

    /// Paper Fig. 4a: a pick through a *preserved* edge survives deletion
    /// of a different edge (Category 2 keep).
    #[test]
    fn fig4a_preserved_edge_pick_is_kept() {
        let g = star_plus_ring();
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 8, 3);
        // Find a slot of the hub whose source is vertex 1.
        let slot = (1..=8u32)
            .find(|&t| state.pick(0, t).0 == 1)
            .expect("some pick from 1");
        let before = state.pick(0, slot);
        // Delete hub edge to a *different* neighbor (pick an unused one).
        let victim = (2..=4u32).find(|&u| u != before.0).unwrap();
        step(
            &mut dg,
            &mut state,
            EditBatch::from_lists([], [(0, victim)]),
            false,
        );
        assert_eq!(
            state.pick(0, slot),
            before,
            "pick through preserved edge kept"
        );
    }

    /// Paper Fig. 4b: a pick through a *deleted* edge must be re-drawn
    /// from the remaining neighbors.
    #[test]
    fn fig4b_deleted_edge_pick_is_redrawn() {
        let g = star_plus_ring();
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 8, 3);
        let slot = (1..=8u32)
            .find(|&t| state.pick(0, t).0 == 1)
            .expect("some pick from 1");
        step(
            &mut dg,
            &mut state,
            EditBatch::from_lists([], [(0, 1)]),
            false,
        );
        let (new_src, _) = state.pick(0, slot);
        assert_ne!(new_src, 1, "deleted source must be replaced");
        assert!(dg.graph().neighbors(0).contains(&new_src));
    }

    /// Paper Fig. 5a / Theorem 5: with one new neighbor among `deg`
    /// current ones, a surviving pick is kept with probability
    /// `(deg-1)/deg`; across seeds the keep rate must match.
    #[test]
    fn fig5a_category3_keep_rate() {
        let mut kept = 0u32;
        let trials = 2000;
        for seed in 0..trials {
            // Path 1-0-2 plus insertion of (0,3): deg becomes 3, na = 1.
            let g = AdjacencyGraph::from_edges(4, [(0, 1), (0, 2)]);
            let mut dg = DynamicGraph::new(g);
            let mut state = run_propagation(dg.graph(), 1, seed as u64);
            let before = state.pick(0, 1);
            step(
                &mut dg,
                &mut state,
                EditBatch::from_lists([(0, 3)], []),
                false,
            );
            let after = state.pick(0, 1);
            if after == before {
                kept += 1;
            } else {
                assert_eq!(after.0, 3, "redraw must target the new neighbor");
            }
        }
        let rate = f64::from(kept) / f64::from(trials);
        assert!((rate - 2.0 / 3.0).abs() < 0.04, "keep rate {rate} vs 2/3");
    }

    /// Paper Fig. 6: a propagation chain 5→4→3→2→1; deleting the first
    /// edge updates every downstream label. Built by hand so the chain
    /// shape is exact.
    #[test]
    fn fig6_propagation_tree_cascade() {
        // Path graph 1-2-3-4-5 (ids 0..4 = vertices 1..5).
        let g = AdjacencyGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut state = LabelState::new(5, 4, 99);
        // Hand-craft: at t=1, vertex 3 (id) picks (4, 0) — label "5" (id 4).
        // t=2: vertex 2 picks (3, 1); t=3: vertex 1 picks (2, 2);
        // t=4: vertex 0 picks (1, 3). All other slots: self-ish picks.
        let chain = [
            (3u32, 1u32, 4u32, 0u32),
            (2, 2, 3, 1),
            (1, 3, 2, 2),
            (0, 4, 1, 3),
        ];
        // Fill every slot with a valid default first: pick left neighbor pos 0.
        for v in 0..5u32 {
            for t in 1..=4u32 {
                let src = g.neighbors(v)[0];
                state.set_pick(v, t, src, 0);
                state.set_label(v, t, state.label(src, 0));
                state.add_record(src, 0, v, t);
            }
        }
        for &(v, t, src, pos) in &chain {
            let (os, op) = state.pick(v, t);
            state.remove_record(os, op, v, t);
            state.set_pick(v, t, src, pos);
            state.set_label(v, t, state.label(src, pos));
            state.add_record(src, pos, v, t);
        }
        check_consistency(&state, &g).unwrap();
        assert_eq!(state.label(0, 4), 4, "label 5 reached vertex 1");
        // Delete edge (4,5) i.e. ids (3,4).
        let mut dg = DynamicGraph::new(g);
        let applied = dg.apply(&EditBatch::from_lists([], [(3, 4)])).unwrap();
        let report = apply_correction(&mut state, dg.graph(), &applied, false);
        check_consistency(&state, dg.graph()).unwrap();
        // Vertex 3's t=1 slot was repicked; the chain must have been
        // corrected all the way down (3 deliveries along the chain).
        assert!(report.repicks >= 1);
        assert!(
            report.deliveries >= 3,
            "chain of 3 downstream labels, got {report:?}"
        );
        let l = state.label(3, 1);
        assert_eq!(state.label(2, 2), l);
        assert_eq!(state.label(1, 3), l);
        assert_eq!(state.label(0, 4), l);
        assert_ne!(
            state.label(0, 4),
            4,
            "old label 5 must be gone from the chain"
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let g = star_plus_ring();
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 6, 1);
        let before: Vec<_> = (0..5).map(|v| state.label_sequence(v).to_vec()).collect();
        let report = step(&mut dg, &mut state, EditBatch::new(), false);
        assert_eq!(report, UpdateReport::default());
        let after: Vec<_> = (0..5).map(|v| state.label_sequence(v).to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn vertex_losing_all_neighbors_reverts_to_own_label() {
        let g = AdjacencyGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 6, 2);
        step(
            &mut dg,
            &mut state,
            EditBatch::from_lists([], [(0, 1), (0, 2)]),
            false,
        );
        assert!(state.label_sequence(0).iter().all(|&l| l == 0));
        check_consistency(&state, dg.graph()).unwrap();
    }

    #[test]
    fn previously_isolated_vertex_joins() {
        let mut g = AdjacencyGraph::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 6, 2);
        assert!(state.label_sequence(3).iter().all(|&l| l == 3));
        step(
            &mut dg,
            &mut state,
            EditBatch::from_lists([(3, 1)], []),
            false,
        );
        check_consistency(&state, dg.graph()).unwrap();
        // All picks of vertex 3 now come from its only neighbor 1.
        for t in 1..=6u32 {
            assert_eq!(state.pick(3, t).0, 1);
        }
    }

    #[test]
    fn pruned_mode_touches_no_more_than_faithful() {
        for seed in 0..8u64 {
            let make = || {
                let g = star_plus_ring();
                let dg = DynamicGraph::new(g);
                let state = run_propagation(dg.graph(), 15, seed);
                (dg, state)
            };
            let batch = EditBatch::from_lists([(1, 3)], [(0, 1)]);
            let (mut dg_f, mut st_f) = make();
            let rep_f = step(&mut dg_f, &mut st_f, batch.clone(), false);
            let (mut dg_p, mut st_p) = make();
            let rep_p = step(&mut dg_p, &mut st_p, batch, true);
            assert!(
                rep_p.deliveries <= rep_f.deliveries,
                "{rep_p:?} vs {rep_f:?}"
            );
            assert_eq!(rep_p.repicks, rep_f.repicks, "phase A identical");
            // Both end bit-identical: pruning only skips no-op deliveries.
            for v in 0..5u32 {
                assert_eq!(st_f.label_sequence(v), st_p.label_sequence(v));
                for t in 1..=15u32 {
                    assert_eq!(st_f.pick(v, t), st_p.pick(v, t));
                }
            }
        }
    }

    #[test]
    fn slot_delta_stream_replays_the_repair_exactly() {
        // Replaying the emitted deltas over the pre-repair sequences must
        // land on the post-repair sequences — the property the streaming
        // counter store builds on.
        for seed in 0..6u64 {
            let g = star_plus_ring();
            let mut dg = DynamicGraph::new(g);
            let mut state = run_propagation(dg.graph(), 12, seed);
            let before: Vec<Vec<u32>> = (0..5).map(|v| state.label_sequence(v).to_vec()).collect();
            let applied = dg
                .apply(&EditBatch::from_lists([(1, 3)], [(0, 1)]))
                .unwrap();
            let mut dirty = FxHashSet::default();
            let mut deltas = Vec::new();
            apply_correction_streaming(
                &mut state,
                dg.graph(),
                &applied,
                false,
                &mut dirty,
                &mut deltas,
            );
            let mut replayed = before.clone();
            for d in &deltas {
                let slot = d.slot as usize;
                assert_eq!(
                    replayed[d.v as usize][slot], d.old,
                    "delta chain broken at {d:?}"
                );
                assert_ne!(d.old, d.new, "no-op delta emitted");
                replayed[d.v as usize][slot] = d.new;
            }
            for v in 0..5u32 {
                assert_eq!(replayed[v as usize], state.label_sequence(v));
                // Dirty tracking and delta emission must agree.
                assert_eq!(
                    dirty.contains(&v),
                    before[v as usize] != state.label_sequence(v),
                    "dirty set wrong for {v}"
                );
            }
            // Compaction preserves the net movement.
            let net = rslpa_graph::compact_slot_deltas(&deltas);
            let mut compact_replay = before.clone();
            for d in &net {
                compact_replay[d.v as usize][d.slot as usize] = d.new;
            }
            for v in 0..5usize {
                assert_eq!(compact_replay[v], state.label_sequence(v as u32));
            }
        }
    }

    /// Apply one batch with an optional damper, mirroring the detector's
    /// streaming call.
    fn step_damped(
        dg: &mut DynamicGraph,
        state: &mut LabelState,
        batch: EditBatch,
        damper: Option<&mut CascadeDamper>,
    ) -> UpdateReport {
        let applied = dg.apply(&batch).expect("valid batch");
        let mut dirty = FxHashSet::default();
        let mut deltas = Vec::new();
        apply_correction_damped(
            state,
            dg.graph(),
            &applied,
            false,
            damper,
            &mut dirty,
            &mut deltas,
        )
    }

    #[test]
    fn damping_with_a_huge_cap_is_bit_identical_to_no_damping() {
        // A cap no degree reaches must not change a single bit — the
        // damped path degenerates to the plain repair.
        for seed in 0..6u64 {
            let batches = [
                EditBatch::from_lists([(1, 3)], [(0, 1)]),
                EditBatch::from_lists([(0, 1)], [(2, 3)]),
                EditBatch::from_lists([], [(0, 4)]),
            ];
            let mut dg_a = DynamicGraph::new(star_plus_ring());
            let mut plain = run_propagation(dg_a.graph(), 12, seed);
            let mut dg_b = DynamicGraph::new(star_plus_ring());
            let mut damped = run_propagation(dg_b.graph(), 12, seed);
            let mut damper = CascadeDamper::new(DampingConfig {
                degree_cap: 1_000,
                flush_budget: 1,
            });
            for batch in &batches {
                let rep_plain = step_damped(&mut dg_a, &mut plain, batch.clone(), None);
                let rep_damped =
                    step_damped(&mut dg_b, &mut damped, batch.clone(), Some(&mut damper));
                assert_eq!(rep_plain, rep_damped, "reports diverged");
                assert_eq!(rep_damped.damped_deferrals, 0);
            }
            assert_eq!(damper.pending_vertices(), 0);
            for v in 0..5u32 {
                assert_eq!(plain.label_sequence(v), damped.label_sequence(v));
                for t in 1..=12u32 {
                    assert_eq!(plain.pick(v, t), damped.pick(v, t));
                }
            }
        }
    }

    #[test]
    fn damped_state_converges_to_the_undamped_fixed_point() {
        // Picks are label-independent, so damping only lets label values
        // lag: listeners on a muted source keep their own value until
        // the unmute release. Once every parked vertex drops back under
        // the cap (the relief batch) and the pending work drains (empty
        // batches trigger pure release flushes), the damped state must
        // equal the undamped one bit for bit.
        let mut deferred_any = 0usize;
        for seed in 0..6u64 {
            let batches = [
                EditBatch::from_lists([(1, 3)], [(0, 1)]),
                EditBatch::from_lists([(0, 1), (2, 4)], [(2, 3)]),
                // Relief: every degree ends at or below the cap.
                EditBatch::from_lists([], [(0, 3), (0, 4), (1, 3)]),
            ];
            let mut dg_a = DynamicGraph::new(star_plus_ring());
            let mut plain = run_propagation(dg_a.graph(), 12, seed);
            let mut dg_b = DynamicGraph::new(star_plus_ring());
            let mut damped = run_propagation(dg_b.graph(), 12, seed);
            // Cap 3: the hub (degree 4) and whichever ring vertex the
            // insertions push to degree 4 mute; budget 1 stretches the
            // drain over many flushes.
            let mut damper = CascadeDamper::new(DampingConfig {
                degree_cap: 3,
                flush_budget: 1,
            });
            for batch in &batches {
                step_damped(&mut dg_a, &mut plain, batch.clone(), None);
                let rep = step_damped(&mut dg_b, &mut damped, batch.clone(), Some(&mut damper));
                deferred_any += rep.damped_deferrals;
            }
            // Drain: empty batches release pending work budget by budget.
            let mut rounds = 0;
            while damper.masks_inconsistency(&damped) {
                step_damped(&mut dg_b, &mut damped, EditBatch::new(), Some(&mut damper));
                rounds += 1;
                assert!(rounds < 200, "pending work failed to drain");
            }
            crate::verify::check_consistency(&damped, dg_b.graph()).unwrap();
            for v in 0..5u32 {
                assert_eq!(
                    plain.label_sequence(v),
                    damped.label_sequence(v),
                    "drained damped state diverged at {v} (seed {seed})"
                );
                for t in 1..=12u32 {
                    assert_eq!(plain.pick(v, t), damped.pick(v, t));
                    assert_eq!(plain.epoch(v, t), damped.epoch(v, t));
                }
            }
        }
        assert!(deferred_any > 0, "cap 3 must actually defer somewhere");
    }

    #[test]
    fn eta_counts_distinct_slots() {
        let g = star_plus_ring();
        let mut dg = DynamicGraph::new(g);
        let mut state = run_propagation(dg.graph(), 15, 4);
        let report = step(
            &mut dg,
            &mut state,
            EditBatch::from_lists([], [(0, 1)]),
            false,
        );
        assert!(report.eta <= report.repicks + report.deliveries);
        assert!(report.eta >= report.repicks);
        assert!(report.value_changes <= report.deliveries);
    }
}
