//! [`CommunityService`]: the long-lived facade tying queue, policy,
//! maintenance loop, snapshot store, and query engine together.

use std::sync::Arc;
use std::thread::JoinHandle;

use rslpa_core::{DampingConfig, DetectionResult, RslpaConfig};
use rslpa_graph::{AdjacencyGraph, VertexId};
use rslpa_trace::Tracer;

use crate::maintain::MaintenanceLoop;
use crate::policy::{BySize, FlushPolicy};
use crate::query::QueryEngine;
use crate::queue::{BarrierGate, Command, EditOp, EditQueue};
use crate::shards::RepairEngine;
use crate::snapshot::{CommunitySnapshot, SnapshotReader, SnapshotStore};
use crate::stats::{ServeStats, StatsReport};

/// How sharded workers deliver boundary corrections to each other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Coordinator-relayed rounds (the pre-mesh baseline): workers hand
    /// outboxes back to the maintenance thread, which regroups and
    /// re-sends them — 2 channel hops per active shard per round, and
    /// counter upkeep runs centrally on the maintenance thread.
    Coordinator,
    /// Peer-to-peer mailbox mesh (default): workers deliver envelopes
    /// directly over per-peer channels, rounds synchronize on a shared
    /// barrier, and each worker owns the edge-counter partition of its
    /// own vertices so upkeep runs inside the workers in parallel.
    #[default]
    Mailbox,
}

impl std::fmt::Display for ExchangeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExchangeMode::Coordinator => "coordinator",
            ExchangeMode::Mailbox => "mailbox",
        })
    }
}

impl std::str::FromStr for ExchangeMode {
    type Err = String;

    /// Parse the CLI spelling (`coordinator` | `mailbox`) — the shared
    /// authority for every `--engine` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "coordinator" => Ok(ExchangeMode::Coordinator),
            "mailbox" => Ok(ExchangeMode::Mailbox),
            other => Err(format!("{other:?} is not coordinator|mailbox")),
        }
    }
}

/// Flight-recorder configuration (see [`ServeConfig::with_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOptions {
    /// Ring capacity per lane, in records (one lane for the maintenance
    /// thread plus one per shard worker; 32 bytes per record). When a
    /// lane's ring wraps, the oldest records are overwritten and counted
    /// in `trace_dropped_records`.
    pub capacity_per_lane: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            capacity_per_lane: 1 << 16,
        }
    }
}

/// Service configuration.
pub struct ServeConfig {
    /// Detector parameters (iterations, seed, cascade mode).
    pub detector: RslpaConfig,
    /// Micro-batching policy for the ingestion queue.
    pub policy: Box<dyn FlushPolicy>,
    /// Publish a snapshot every this many flushes (≥ 1). Barriers and
    /// shutdown always publish. Post-processing dominates flush cost, so
    /// raising this trades snapshot freshness for ingest throughput.
    pub snapshot_every: usize,
    /// How many recent epochs stay addressable for diff queries.
    pub history: usize,
    /// Maintenance shards. `1` (the default) keeps the single-writer
    /// path; `> 1` partitions the vertex space and repairs flushes on
    /// that many worker threads with boundary exchange. Rosters are
    /// bit-identical across shard counts for the same edit/barrier
    /// sequence.
    ///
    /// `0` is clamped to the single-writer path at start-up rather than
    /// panicking downstream. Counts above the seed graph's vertex count
    /// are honored as-is: live streams grow the id space, so a service
    /// seeded small may still want many shards (a shard that owns no
    /// vertex yet idles until a repartition hands it some). The effective
    /// count is what [`StatsReport::shards`](crate::StatsReport) reports.
    pub shards: usize,
    /// Boundary-exchange transport for `shards > 1` (ignored otherwise).
    pub exchange: ExchangeMode,
    /// Flight-recorder setup. `None` (the default) wires every span site
    /// to a permanently-off recorder — one relaxed atomic load per site,
    /// no storage. `Some` allocates one ring per thread and records the
    /// full maintain path for export via
    /// [`CommunityService::tracer`].
    pub trace: Option<TraceOptions>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // The serve path is the one place damping defaults *on*: a
            // live service is exactly where a flash crowd's unbounded
            // cascade blows up flush latency and dirty fractions. The
            // library default (`RslpaConfig`) stays `None` — batch and
            // reference paths keep the paper's Algorithm 2 verbatim.
            detector: RslpaConfig {
                damping: Some(DampingConfig::default()),
                ..RslpaConfig::default()
            },
            policy: Box::new(BySize::default()),
            snapshot_every: 1,
            history: 64,
            shards: 1,
            exchange: ExchangeMode::default(),
            trace: None,
        }
    }
}

impl ServeConfig {
    /// Small-iteration config for tests and examples. Keeps the serve
    /// default of damping *on* (see [`Default`]).
    pub fn quick(iterations: usize, seed: u64) -> Self {
        Self {
            detector: RslpaConfig {
                damping: Some(DampingConfig::default()),
                ..RslpaConfig::quick(iterations, seed)
            },
            ..Self::default()
        }
    }

    /// Override the degree-capped cascade damping (builder style). The
    /// serve default is `DampingConfig::default()` (cap 64, budget 64).
    pub fn with_damping(mut self, damping: DampingConfig) -> Self {
        self.detector.damping = Some(damping);
        self
    }

    /// Disable cascade damping (builder style): restores the paper's
    /// unbounded Algorithm 2 cascade on the serve path, reproducing the
    /// pre-damping behavior bit-for-bit.
    pub fn without_damping(mut self) -> Self {
        self.detector.damping = None;
        self
    }

    /// Replace the flush policy (builder style).
    pub fn with_policy(mut self, policy: impl FlushPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Set the snapshot cadence (builder style).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// Set the maintenance shard count (builder style).
    ///
    /// `1` (the default) keeps the single-writer repair path; `N > 1`
    /// partitions the vertex space across `N` worker threads that repair
    /// flushes in parallel and exchange boundary corrections. Shard count
    /// is purely a throughput knob: for the same edit/barrier sequence,
    /// every shard count publishes bit-identical rosters.
    ///
    /// ```
    /// use rslpa_graph::AdjacencyGraph;
    /// use rslpa_serve::{CommunityService, ServeConfig};
    ///
    /// let graph = AdjacencyGraph::from_edges(6, [
    ///     (0, 1), (1, 2), (0, 2),
    ///     (3, 4), (4, 5), (3, 5),
    ///     (2, 3),
    /// ]);
    /// let run = |shards: usize| {
    ///     let config = ServeConfig::quick(25, 7).with_shards(shards);
    ///     let service = CommunityService::start(graph.clone(), config);
    ///     service.ingest().insert(1, 4).unwrap();
    ///     service.ingest().barrier().unwrap();
    ///     let roster = service.latest().cover.clone();
    ///     service.shutdown();
    ///     roster
    /// };
    /// assert_eq!(run(1), run(4)); // sharding never changes semantics
    /// ```
    ///
    /// `0` is clamped to the single-writer path; any larger count is
    /// honored as-is, even above the seed graph's vertex count (see
    /// [`shards`](Self::shards)).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Select the boundary-exchange transport (builder style). Only
    /// meaningful with `shards > 1`; see [`ExchangeMode`].
    pub fn with_exchange(mut self, exchange: ExchangeMode) -> Self {
        self.exchange = exchange;
        self
    }

    /// Enable the flight recorder (builder style): every maintain-path
    /// span (queue drain, flush, repair wave, mesh exchange round, barrier
    /// wait, counter upkeep, publish sub-phases) records into a per-thread
    /// ring, exportable as Chrome trace JSON via
    /// [`CommunityService::tracer`].
    ///
    /// ```
    /// use rslpa_graph::AdjacencyGraph;
    /// use rslpa_serve::{CommunityService, ServeConfig, TraceOptions};
    ///
    /// let graph = AdjacencyGraph::from_edges(6, [
    ///     (0, 1), (1, 2), (0, 2),
    ///     (3, 4), (4, 5), (3, 5),
    ///     (2, 3),
    /// ]);
    /// let config = ServeConfig::quick(20, 7)
    ///     .with_shards(2)
    ///     .with_trace(TraceOptions::default());
    /// let service = CommunityService::start(graph, config);
    /// service.ingest().insert(1, 4).unwrap();
    /// service.ingest().barrier().unwrap();
    /// let tracer = service.tracer();
    /// service.shutdown();
    /// let dump = tracer.drain();
    /// assert!(dump.records.iter().any(|r| r.lane == 0), "maintain lane recorded");
    /// let json = dump.chrome_json(&["maintain", "shard 0", "shard 1"]);
    /// assert!(json.starts_with("{\"traceEvents\":["));
    /// ```
    pub fn with_trace(mut self, trace: TraceOptions) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Error submitting to a service that has shut down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "community service is shut down")
    }
}

impl std::error::Error for ServiceClosed {}

/// A clonable write handle: feeds edits and barriers into the queue from
/// any thread.
#[derive(Clone)]
pub struct IngestHandle {
    queue: Arc<EditQueue>,
    stats: Arc<ServeStats>,
}

impl IngestHandle {
    /// Enqueue one edit operation.
    pub fn submit(&self, op: EditOp) -> Result<(), ServiceClosed> {
        if self.queue.push(Command::Edit(op)) {
            self.stats.note_enqueued();
            Ok(())
        } else {
            Err(ServiceClosed)
        }
    }

    /// Enqueue an edge insertion.
    pub fn insert(&self, u: VertexId, v: VertexId) -> Result<(), ServiceClosed> {
        self.submit(EditOp::Insert(u, v))
    }

    /// Enqueue an edge deletion.
    pub fn delete(&self, u: VertexId, v: VertexId) -> Result<(), ServiceClosed> {
        self.submit(EditOp::Delete(u, v))
    }

    /// Block until every edit enqueued before this call is applied and a
    /// covering snapshot is published; returns that snapshot's epoch.
    pub fn barrier(&self) -> Result<u64, ServiceClosed> {
        let gate = BarrierGate::new();
        if !self.queue.push(Command::Barrier(gate.clone())) {
            return Err(ServiceClosed);
        }
        Ok(gate.wait())
    }
}

/// A live, queryable community-detection service over a mutating graph.
///
/// ```
/// use rslpa_graph::AdjacencyGraph;
/// use rslpa_serve::{CommunityService, ServeConfig};
///
/// let graph = AdjacencyGraph::from_edges(6, [
///     (0, 1), (1, 2), (0, 2),
///     (3, 4), (4, 5), (3, 5),
///     (2, 3),
/// ]);
/// let service = CommunityService::start(graph, ServeConfig::quick(30, 7));
/// let mut queries = service.query();
///
/// // Reads are served from the genesis snapshot immediately.
/// assert!(!queries.membership(0).is_empty());
///
/// // Writes flow through the ingestion queue; a barrier waits for them.
/// service.ingest().insert(1, 4).unwrap();
/// let epoch = service.ingest().barrier().unwrap();
/// assert!(epoch > 0);
/// let report = service.shutdown();
/// assert_eq!(report.edits_applied, 1);
/// ```
pub struct CommunityService {
    queue: Arc<EditQueue>,
    store: Arc<SnapshotStore>,
    stats: Arc<ServeStats>,
    tracer: Arc<Tracer>,
    worker: Option<JoinHandle<()>>,
}

impl CommunityService {
    /// Run initial label propagation on `graph`, publish the genesis
    /// snapshot (epoch 0), and start the maintenance thread (plus shard
    /// workers when `config.shards > 1`).
    pub fn start(graph: AdjacencyGraph, config: ServeConfig) -> Self {
        // Clamp the shard count below to 1 (0 would have no writer at
        // all). There is deliberately no upper clamp at the *initial*
        // vertex count: streams grow the id space, so a service seeded
        // with a small genesis graph may legitimately ask for more shards
        // than it has vertices today — a shard that owns no vertex yet
        // just idles until repartitioning hands it some.
        let shards = config.shards.max(1);
        let stats = Arc::new(ServeStats::with_shards(shards));
        // Lane 0 is the maintenance thread; lanes 1 + s the shard workers.
        // Without trace options the tracer is the permanently-off variant,
        // so every span site still holds a writer and pays exactly one
        // relaxed load.
        let tracer = Arc::new(match config.trace {
            Some(t) => Tracer::new(shards + 1, t.capacity_per_lane),
            None => Tracer::disabled(),
        });
        let bootstrap = RepairEngine::bootstrap(
            graph,
            &config.detector,
            shards,
            config.exchange,
            &stats,
            &tracer,
        );
        let detection = DetectionResult {
            result: bootstrap.genesis,
        };
        let genesis = CommunitySnapshot::build(0, bootstrap.engine.graph(), &detection, 0);
        let store = Arc::new(SnapshotStore::new(genesis, config.history));
        let queue = EditQueue::new();
        let worker = MaintenanceLoop {
            engine: bootstrap.engine,
            postprocess: bootstrap.postprocess,
            queue: Arc::clone(&queue),
            store: Arc::clone(&store),
            stats: Arc::clone(&stats),
            policy: config.policy,
            snapshot_every: config.snapshot_every.max(1),
            flushes_since_snapshot: 0,
            dirty_since_snapshot: false,
            resolve_scratch: Default::default(),
            slot_deltas: Vec::new(),
            hubs: Default::default(),
            trace: tracer.writer(0),
        };
        let handle = std::thread::Builder::new()
            .name("rslpa-serve-maintain".into())
            .spawn(move || worker.run())
            .expect("spawn maintenance thread");
        Self {
            queue,
            store,
            stats,
            tracer,
            worker: Some(handle),
        }
    }

    /// The service's flight recorder. With tracing off (the default) this
    /// is the permanently-disabled recorder — draining it yields nothing.
    /// Grab the `Arc` before [`CommunityService::shutdown`] to export the
    /// final trace (see [`ServeConfig::with_trace`] for an example).
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// A clonable write handle.
    pub fn ingest(&self) -> IngestHandle {
        IngestHandle {
            queue: Arc::clone(&self.queue),
            stats: Arc::clone(&self.stats),
        }
    }

    /// A latency-accounted query engine (one per reader thread).
    pub fn query(&self) -> QueryEngine {
        QueryEngine::new(
            self.store.reader(),
            Arc::clone(&self.store),
            Arc::clone(&self.stats),
        )
    }

    /// A raw lock-free snapshot reader.
    pub fn reader(&self) -> SnapshotReader {
        self.store.reader()
    }

    /// The newest published snapshot.
    pub fn latest(&self) -> Arc<CommunitySnapshot> {
        self.store.latest()
    }

    /// Newest published epoch.
    pub fn latest_epoch(&self) -> u64 {
        self.store.latest_epoch()
    }

    /// Commands currently waiting in the ingestion queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Point-in-time operation counters and latency summaries.
    pub fn stats(&self) -> StatsReport {
        self.stats.report()
    }

    /// Record one externally-scored publish window (the published roster
    /// compared against a tracked ground-truth cover). The serve loop
    /// never scores itself — quality harnesses (`repro churn`) compute
    /// ONMI/F1/omega with `rslpa_metrics` and deposit the scores here so
    /// they travel with the stats report (`quality_per_window`, schema
    /// v4).
    pub fn note_quality_window(&self, window: crate::stats::QualityWindow) {
        self.stats.note_quality_window(window);
    }

    /// Frozen bucket counts of the query-latency histogram. Subtract an
    /// earlier snapshot
    /// ([`HistogramSnapshot::delta_since`](crate::HistogramSnapshot::delta_since))
    /// to get per-window percentiles instead of cumulative-only.
    pub fn query_latency_snapshot(&self) -> crate::HistogramSnapshot {
        self.stats.queries.snapshot()
    }

    /// Flush remaining edits, publish a final snapshot, stop the
    /// maintenance thread, and return the final stats.
    pub fn shutdown(mut self) -> StatsReport {
        self.shutdown_inner();
        self.stats.report()
    }

    fn shutdown_inner(&mut self) {
        self.queue.push(Command::Shutdown);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CommunityService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BarrierOnly, Immediate};
    use std::time::Duration;

    fn two_triangles() -> AdjacencyGraph {
        AdjacencyGraph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn fully_rejected_flush_does_not_publish_a_duplicate_epoch() {
        // An op stream that nets to nothing (here: inserting an edge that
        // already exists) must not make the next barrier churn out an
        // identical epoch.
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(20, 3).with_policy(Immediate),
        );
        let ingest = svc.ingest();
        ingest.insert(0, 1).unwrap(); // already present → rejected
        let epoch = ingest.barrier().unwrap();
        assert_eq!(epoch, 0, "no-op flush must not bump the epoch");
        let report = svc.shutdown();
        assert_eq!(report.edits_rejected, 1);
        assert_eq!(report.snapshots_published, 0);
    }

    #[test]
    fn genesis_snapshot_is_queryable_before_any_edit() {
        let svc = CommunityService::start(two_triangles(), ServeConfig::quick(30, 3));
        let snap = svc.latest();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.num_vertices, 6);
        assert!(!snap.cover.is_empty());
        let mut q = svc.query();
        assert!(!q.membership(0).is_empty());
        assert!(svc.stats().queries.count >= 1);
    }

    #[test]
    fn barrier_applies_all_enqueued_edits() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(30, 3).with_policy(BarrierOnly),
        );
        let ingest = svc.ingest();
        ingest.insert(0, 3).unwrap();
        ingest.insert(1, 4).unwrap();
        ingest.delete(2, 3).unwrap();
        let epoch = ingest.barrier().unwrap();
        assert!(epoch >= 1);
        let snap = svc.latest();
        assert_eq!(snap.epoch, epoch);
        assert_eq!(snap.num_edges, 7 + 2 - 1);
        let report = svc.shutdown();
        assert_eq!(report.edits_applied, 3);
        assert_eq!(report.edits_rejected, 0);
        assert_eq!(report.barriers, 1);
    }

    #[test]
    fn noop_edits_are_rejected_not_fatal() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(20, 1).with_policy(BarrierOnly),
        );
        let ingest = svc.ingest();
        ingest.insert(0, 1).unwrap(); // exists
        ingest.delete(0, 4).unwrap(); // absent
        ingest.insert(2, 2).unwrap(); // self-loop
        ingest.barrier().unwrap();
        let report = svc.shutdown();
        assert_eq!(report.edits_applied, 0);
        assert_eq!(report.edits_rejected, 3);
    }

    #[test]
    fn quiet_barriers_do_not_mint_new_epochs() {
        let svc = CommunityService::start(two_triangles(), ServeConfig::quick(20, 1));
        let ingest = svc.ingest();
        let e1 = ingest.barrier().unwrap();
        let e2 = ingest.barrier().unwrap();
        assert_eq!(e1, 0, "no edits -> genesis still current");
        assert_eq!(e2, 0);
        assert_eq!(svc.shutdown().snapshots_published, 0);
    }

    #[test]
    fn edits_reference_fresh_vertices() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(25, 5).with_policy(BarrierOnly),
        );
        let ingest = svc.ingest();
        ingest.insert(6, 0).unwrap();
        ingest.insert(6, 1).unwrap();
        ingest.barrier().unwrap();
        let snap = svc.latest();
        assert_eq!(snap.num_vertices, 7);
        assert!(
            !snap.membership(6).is_empty(),
            "new vertex joins a community"
        );
        drop(svc);
    }

    #[test]
    fn immediate_policy_flushes_per_edit() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(20, 2).with_policy(Immediate),
        );
        let ingest = svc.ingest();
        ingest.insert(0, 4).unwrap();
        ingest.insert(1, 5).unwrap();
        ingest.barrier().unwrap();
        let report = svc.shutdown();
        assert_eq!(report.edits_applied, 2);
        assert!(
            report.batches_flushed >= 2,
            "immediate policy batches nothing: {report:?}"
        );
    }

    #[test]
    fn size_policy_batches_edits() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(20, 2).with_policy(crate::policy::BySize {
                max_edits: 64,
                max_linger: Duration::from_millis(50),
            }),
        );
        let ingest = svc.ingest();
        ingest.insert(0, 4).unwrap();
        ingest.insert(1, 5).unwrap();
        ingest.insert(2, 5).unwrap();
        ingest.barrier().unwrap();
        let report = svc.shutdown();
        assert_eq!(report.edits_applied, 3);
        assert_eq!(
            report.batches_flushed, 1,
            "one barrier flush expected: {report:?}"
        );
    }

    #[test]
    fn submissions_after_shutdown_fail_cleanly() {
        let svc = CommunityService::start(two_triangles(), ServeConfig::quick(10, 1));
        let ingest = svc.ingest();
        svc.shutdown();
        assert_eq!(ingest.insert(0, 4), Err(ServiceClosed));
        assert_eq!(ingest.barrier(), Err(ServiceClosed));
        assert!(ServiceClosed.to_string().contains("shut down"));
    }

    #[test]
    fn snapshot_every_throttles_publishing() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(20, 4)
                .with_policy(Immediate)
                .with_snapshot_every(1000),
        );
        let ingest = svc.ingest();
        for v in 0..3u32 {
            ingest.insert(v, v + 3).unwrap();
        }
        // No barrier: snapshots are throttled, so the epoch may lag...
        std::thread::sleep(Duration::from_millis(20));
        let lagging = svc.latest_epoch();
        // ...but shutdown always publishes the final state.
        let report = svc.shutdown();
        assert!(lagging <= report.snapshots_published);
        assert_eq!(report.edits_applied, 3);
        assert!(report.snapshots_published >= 1);
    }

    #[test]
    fn query_engine_diff_across_barrier() {
        let svc = CommunityService::start(
            two_triangles(),
            ServeConfig::quick(30, 11).with_policy(BarrierOnly),
        );
        let ingest = svc.ingest();
        let q0 = ingest.barrier().unwrap();
        // Tear the bridge and the right triangle apart.
        ingest.delete(2, 3).unwrap();
        ingest.delete(3, 4).unwrap();
        ingest.delete(4, 5).unwrap();
        ingest.delete(3, 5).unwrap();
        let q1 = ingest.barrier().unwrap();
        let q = svc.query();
        let diff = q.membership_diff(q0, q1).expect("both epochs in history");
        assert!(diff.changed.iter().any(|&v| v >= 3), "{diff:?}");
        drop(svc);
    }
}
