//! Classic (disjoint) Label Propagation — Raghavan et al. 2007.
//!
//! The ancestor of SLPA (paper §VI: "can only detect disjoint
//! communities"); each vertex holds one label and adopts its neighborhood's
//! plurality label each round. Kept as a cheap sanity baseline for
//! ablations and tests.

use rslpa_graph::rng::{PickKey, Stream};
use rslpa_graph::{AdjacencyGraph, FxHashMap, Label, VertexId};

/// LPA configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LpaConfig {
    /// Maximum sweeps (synchronous LPA can oscillate; a cap is required).
    pub max_iterations: usize,
    /// RNG seed for tie-breaking.
    pub seed: u64,
}

impl Default for LpaConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            seed: 42,
        }
    }
}

/// Run synchronous LPA; returns per-vertex labels (community = equal label).
pub fn run_lpa(graph: &AdjacencyGraph, config: &LpaConfig) -> Vec<Label> {
    let n = graph.num_vertices();
    let mut labels: Vec<Label> = (0..n as Label).collect();
    let mut next = labels.clone();
    let mut counts: FxHashMap<Label, u32> = FxHashMap::default();
    for t in 1..=config.max_iterations as u32 {
        let mut changed = false;
        for v in 0..n as VertexId {
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            counts.clear();
            let mut max = 0u32;
            for &u in nbrs {
                let c = counts.entry(labels[u as usize]).or_insert(0);
                *c += 1;
                max = max.max(*c);
            }
            let mut tied: Vec<Label> = counts
                .iter()
                .filter(|(_, &c)| c == max)
                .map(|(&l, _)| l)
                .collect();
            tied.sort_unstable();
            // Prefer keeping the current label on ties (standard damping
            // that prevents two-coloring oscillation on bipartite graphs).
            let new = if tied.contains(&labels[v as usize]) {
                labels[v as usize]
            } else {
                let key = PickKey::new(config.seed, v, t);
                tied[key.bounded(Stream::VoteTie, tied.len() as u64) as usize]
            };
            if new != labels[v as usize] {
                changed = true;
            }
            next[v as usize] = new;
        }
        std::mem::swap(&mut labels, &mut next);
        if !changed {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cliques_get_two_labels() {
        let mut g = AdjacencyGraph::new(8);
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    g.insert_edge(i, j);
                }
            }
        }
        g.insert_edge(3, 4);
        let labels = run_lpa(&g, &LpaConfig::default());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[4], labels[7]);
    }

    #[test]
    fn clique_converges_to_one_label() {
        let mut g = AdjacencyGraph::new(5);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                g.insert_edge(i, j);
            }
        }
        let labels = run_lpa(&g, &LpaConfig::default());
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn isolated_vertices_keep_labels() {
        let g = AdjacencyGraph::new(3);
        let labels = run_lpa(&g, &LpaConfig::default());
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic() {
        let mut g = AdjacencyGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)] {
            g.insert_edge(u, v);
        }
        let a = run_lpa(&g, &LpaConfig::default());
        let b = run_lpa(&g, &LpaConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn bipartite_does_not_oscillate_forever() {
        // K_{3,3}: classic synchronous-LPA oscillator; the keep-current
        // damping must let it converge to a single label.
        let mut g = AdjacencyGraph::new(6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                g.insert_edge(u, v);
            }
        }
        let labels = run_lpa(
            &g,
            &LpaConfig {
                max_iterations: 50,
                seed: 1,
            },
        );
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert!(distinct.len() <= 2, "should settle, got {labels:?}");
    }
}
