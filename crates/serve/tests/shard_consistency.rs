//! Cross-shard consistency: replaying the same edit log (with barriers)
//! must yield identical epoch rosters **and bit-identical weight lists**
//! for every shard count and every exchange transport — and must match
//! the pre-sharding reference (a plain [`RslpaDetector`] applying the
//! same batches with full post-processing per epoch).
//!
//! This is the end-to-end guarantee the sharded maintenance path rests
//! on: partitioning is a throughput knob, never a semantics knob — and
//! since PR 5, so is the exchange transport (coordinator-relayed rounds
//! vs the peer-to-peer mailbox mesh with shard-owned counter upkeep).
//! The runs are genuinely threaded — each service spawns its maintenance
//! coordinator, and the sharded ones add one worker thread per shard.
//! Publish-time repartitioning (with counter-partition migration) fires
//! at every epoch, so these replays exercise mid-stream row + counter
//! migration continuously.

use rslpa_core::{postprocess, RslpaConfig, RslpaDetector};
use rslpa_gen::edits::uniform_batch;
use rslpa_gen::lfr::LfrParams;
use rslpa_gen::{named_scenarios, ChurnScenario};
use rslpa_graph::{AdjacencyGraph, Cover, DynamicGraph, EditBatch};
use rslpa_serve::{fingerprint_weights, BarrierOnly, CommunityService, ExchangeMode, ServeConfig};

const ITERATIONS: usize = 25;
const SEED: u64 = 2024;

fn seed_graph() -> AdjacencyGraph {
    LfrParams {
        seed: SEED,
        ..LfrParams::scaled(150)
    }
    .generate()
    .expect("LFR generation")
    .graph
}

/// A deterministic script of valid batches against the evolving graph.
fn edit_script(graph: &AdjacencyGraph, batches: usize, batch_size: usize) -> Vec<EditBatch> {
    let mut shadow = DynamicGraph::new(graph.clone());
    (0..batches)
        .map(|i| {
            let batch = uniform_batch(shadow.graph(), batch_size, SEED.wrapping_add(i as u64));
            shadow.apply(&batch).expect("uniform batch validates");
            batch
        })
        .collect()
}

/// Per-barrier observation: the published roster plus the weight-list
/// fingerprint of that epoch (equal fingerprints ⇔ bit-identical weights).
type Epochs = Vec<(Cover, u64)>;

/// Replay the script through a service at `shards`, collecting the roster
/// and weights fingerprint published at every barrier.
fn replay_served(
    graph: AdjacencyGraph,
    script: &[EditBatch],
    shards: usize,
    exchange: ExchangeMode,
) -> Epochs {
    let service = CommunityService::start(
        graph,
        ServeConfig::quick(ITERATIONS, SEED)
            .with_policy(BarrierOnly)
            .with_shards(shards)
            .with_exchange(exchange),
    );
    let ingest = service.ingest();
    let mut epochs = Vec::with_capacity(script.len());
    for batch in script {
        for &(u, v) in batch.deletions() {
            ingest.delete(u, v).expect("service alive");
        }
        for &(u, v) in batch.insertions() {
            ingest.insert(u, v).expect("service alive");
        }
        ingest.barrier().expect("service alive");
        let snap = service.latest();
        epochs.push((snap.cover.clone(), snap.weights_fingerprint));
    }
    let report = service.shutdown();
    assert_eq!(report.shards.len(), shards);
    if shards > 1 {
        // Work must actually be distributed: every shard repaired slots.
        for (i, s) in report.shards.iter().enumerate() {
            assert!(s.slots_repaired > 0, "shard {i} idle: {report:?}");
        }
        if exchange == ExchangeMode::Mailbox {
            // Upkeep must actually be shard-owned: the workers, not the
            // coordinator, folded the slot deltas.
            assert!(
                report.shards.iter().map(|s| s.upkeep_deltas).sum::<u64>() > 0,
                "no shard-owned upkeep recorded: {report:?}"
            );
            // Single-hop delivery, cross-checked through independent
            // counters: `boundary_msgs` is staged route-side by the
            // repair states, `envelope_hops` is tallied port-side at the
            // peer channels — equality means every staged envelope was
            // sent exactly once and nothing else was.
            assert!(report.boundary_msgs > 0, "no boundary traffic: {report:?}");
            assert_eq!(
                report.envelope_hops, report.boundary_msgs,
                "mesh delivery must be single-hop: {report:?}"
            );
        } else {
            // The relay touches every envelope twice by construction.
            assert_eq!(
                report.envelope_hops,
                2 * report.boundary_msgs,
                "coordinator relay is two-hop: {report:?}"
            );
        }
    }
    epochs
}

/// The pre-sharding reference: detector + full detect per barrier, with
/// the weight fingerprint computed by the same function snapshots use.
fn replay_reference(graph: AdjacencyGraph, script: &[EditBatch]) -> Epochs {
    let mut detector = RslpaDetector::new(graph, RslpaConfig::quick(ITERATIONS, SEED));
    script
        .iter()
        .map(|batch| {
            detector.apply_batch(batch).expect("valid batch");
            let result = postprocess(detector.graph(), detector.state(), None);
            let fp = fingerprint_weights(&result.weights);
            (result.cover, fp)
        })
        .collect()
}

#[test]
fn rosters_and_weights_identical_across_shard_counts_and_vs_reference() {
    let graph = seed_graph();
    let script = edit_script(&graph, 8, 40);
    let reference = replay_reference(graph.clone(), &script);
    for exchange in [ExchangeMode::Mailbox, ExchangeMode::Coordinator] {
        for shards in [1usize, 2, 4] {
            let served = replay_served(graph.clone(), &script, shards, exchange);
            assert_eq!(
                served.len(),
                reference.len(),
                "{shards} shards ({exchange:?}): barrier count"
            );
            for (epoch, ((served_cover, served_fp), (reference_cover, reference_fp))) in
                served.iter().zip(&reference).enumerate()
            {
                assert_eq!(
                    served_cover, reference_cover,
                    "{shards} shards ({exchange:?}) roster diverged at barrier {epoch}"
                );
                assert_eq!(
                    served_fp, reference_fp,
                    "{shards} shards ({exchange:?}) weights diverged at barrier {epoch}"
                );
            }
        }
    }
}

#[test]
fn eight_shard_mesh_is_deadlock_free_on_one_core() {
    // The deadlock-freedom smoke the mesh barrier protocol must pass: 8
    // worker threads + the maintenance coordinator on whatever cores the
    // host has (CI runs this single-core), barrier-only policy so every
    // flush is as large — and as boundary-heavy — as the barrier allows.
    // Termination of every barrier() call *is* the assertion; equality
    // with the single-writer replay makes the run meaningful.
    let graph = seed_graph();
    let script = edit_script(&graph, 4, 60);
    let single = replay_served(graph.clone(), &script, 1, ExchangeMode::Mailbox);
    let meshed = replay_served(graph.clone(), &script, 8, ExchangeMode::Mailbox);
    assert_eq!(single, meshed, "8-shard mesh diverged from single writer");
}

#[test]
fn genesis_snapshots_agree_across_shard_counts() {
    let graph = seed_graph();
    let reference = RslpaDetector::new(graph.clone(), RslpaConfig::quick(ITERATIONS, SEED))
        .detect()
        .result;
    for shards in [1usize, 2, 4] {
        let service = CommunityService::start(
            graph.clone(),
            ServeConfig::quick(ITERATIONS, SEED).with_shards(shards),
        );
        let snap = service.latest();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.cover, reference.cover, "{shards} shards");
        assert_eq!(snap.tau1.to_bits(), reference.tau1.to_bits());
        assert_eq!(snap.tau2.to_bits(), reference.tau2.to_bits());
        service.shutdown();
    }
}

#[test]
fn zero_and_oversized_shard_counts_work_instead_of_panicking() {
    // `with_shards(0)` clamps to the single-writer path at the builder;
    // a raw config with `shards: 0` clamps at start-up. Counts *above*
    // the seed vertex count are honored as-is — streams grow the id
    // space, so a small genesis graph may legitimately want more shards
    // than it has vertices today (empty shards idle until repartitioning
    // hands them rows).
    let graph = AdjacencyGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
    let zero = ServeConfig::quick(10, 1).with_shards(0);
    assert_eq!(zero.shards, 1, "builder clamps zero to single-writer");

    let raw_zero = ServeConfig {
        shards: 0,
        ..ServeConfig::quick(10, 1)
    };
    let service = CommunityService::start(graph.clone(), raw_zero);
    service.ingest().insert(0, 2).unwrap();
    service.ingest().barrier().unwrap();
    assert_eq!(service.shutdown().shards.len(), 1);

    // 8 shards over 4 vertices: honored, half the shards start empty,
    // and edits (including ones growing the id space) still apply.
    let oversized = ServeConfig::quick(10, 1).with_shards(8);
    let service = CommunityService::start(graph, oversized);
    service.ingest().insert(0, 2).unwrap();
    service.ingest().insert(7, 1).unwrap(); // grows past the seed n=4
    service.ingest().barrier().unwrap();
    let snapshot = service.latest();
    assert_eq!(snapshot.num_vertices, 8);
    assert_eq!(service.shutdown().shards.len(), 8);
}

/// Unroll an adversarial scenario into its seed graph and a replayable
/// window script (one barrier per window when replayed).
fn scenario_script(
    scenario: &mut dyn ChurnScenario,
    windows: usize,
) -> (AdjacencyGraph, Vec<EditBatch>) {
    let (graph, _truth) = scenario.seed_graph();
    let mut shadow = DynamicGraph::new(graph.clone());
    let script = (0..windows)
        .map(|_| {
            let window = scenario.next_window(shadow.graph());
            if let Some(m) = window
                .batch
                .insertions()
                .iter()
                .map(|&(u, v)| u.max(v))
                .max()
            {
                shadow.ensure_vertices((m as usize + 1).max(shadow.graph().num_vertices()));
            }
            shadow
                .apply(&window.batch)
                .expect("scenario batch validates");
            window.batch
        })
        .collect();
    (graph, script)
}

/// Replay without the per-shard activity asserts of [`replay_served`]:
/// adversarial windows can legitimately leave a shard idle (a cascade
/// confined to one block, a delete-only window), and idleness is not the
/// property under test here — bit-identity is.
fn replay_scenario(
    graph: AdjacencyGraph,
    script: &[EditBatch],
    shards: usize,
    exchange: ExchangeMode,
) -> Epochs {
    let service = CommunityService::start(
        graph,
        ServeConfig::quick(ITERATIONS, SEED)
            .with_policy(BarrierOnly)
            .with_shards(shards)
            .with_exchange(exchange),
    );
    let ingest = service.ingest();
    let mut epochs = Vec::with_capacity(script.len());
    for batch in script {
        for &(u, v) in batch.deletions() {
            ingest.delete(u, v).expect("service alive");
        }
        for &(u, v) in batch.insertions() {
            ingest.insert(u, v).expect("service alive");
        }
        ingest.barrier().expect("service alive");
        let snap = service.latest();
        epochs.push((snap.cover.clone(), snap.weights_fingerprint));
    }
    service.shutdown();
    epochs
}

#[test]
fn adversarial_scenarios_bit_identical_across_shards_and_engines() {
    // The break-it streams must not break determinism: every named
    // adversarial scenario, replayed at shards {1, 2, 4, 8} under both
    // exchange transports, publishes bit-identical rosters AND
    // bit-identical weight lists at every barrier window. Hub pile-ups
    // (FlashCrowd), truth-churning splits (SplitMergeStorm), delete-only
    // windows (CascadeDelete), and id-space growth under skew (SkewBurst)
    // all ride through the same engines the uniform pins cover.
    for scenario in &mut named_scenarios(true, 0xC0FFEE) {
        let (graph, script) = scenario_script(scenario.as_mut(), 4);
        let baseline = replay_scenario(graph.clone(), &script, 1, ExchangeMode::Coordinator);
        assert_eq!(baseline.len(), script.len());
        for exchange in [ExchangeMode::Coordinator, ExchangeMode::Mailbox] {
            for shards in [1usize, 2, 4, 8] {
                if shards == 1 && exchange == ExchangeMode::Coordinator {
                    continue; // that's the baseline
                }
                let served = replay_scenario(graph.clone(), &script, shards, exchange);
                for (epoch, (got, want)) in served.iter().zip(&baseline).enumerate() {
                    assert_eq!(
                        got.0,
                        want.0,
                        "{}: {shards} shards ({exchange:?}) roster diverged at window {epoch}",
                        scenario.name()
                    );
                    assert_eq!(
                        got.1,
                        want.1,
                        "{}: {shards} shards ({exchange:?}) weights diverged at window {epoch}",
                        scenario.name()
                    );
                }
            }
        }
    }
}

#[test]
fn fresh_vertices_and_churn_stay_consistent_when_sharded() {
    // Wire brand-new vertices in mid-stream (the lazy shard-row path) and
    // verify sharded results still match the reference.
    let graph = seed_graph();
    let n = graph.num_vertices() as u32;
    let mut script = edit_script(&graph, 3, 25);
    script.push(EditBatch::from_lists([(n, 0), (n, 1), (n + 1, n)], []));
    let mut shadow = DynamicGraph::new(graph.clone());
    for batch in &script[..3] {
        shadow.apply(batch).unwrap();
    }
    shadow.ensure_vertices(n as usize + 2);
    shadow.apply(&script[3]).unwrap();
    script.push(uniform_batch(shadow.graph(), 20, SEED ^ 0xff));

    // Reference needs explicit growth before the wiring batch.
    let mut detector = RslpaDetector::new(graph.clone(), RslpaConfig::quick(ITERATIONS, SEED));
    let mut reference = Vec::new();
    for batch in &script {
        let max_id = batch
            .insertions()
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0);
        if max_id as usize >= detector.graph().num_vertices() {
            detector.ensure_vertices(max_id as usize + 1);
        }
        detector.apply_batch(batch).expect("valid batch");
        reference.push(detector.detect().result.cover);
    }
    for exchange in [ExchangeMode::Mailbox, ExchangeMode::Coordinator] {
        for shards in [1usize, 4] {
            let served: Vec<Cover> = replay_served(graph.clone(), &script, shards, exchange)
                .into_iter()
                .map(|(cover, _)| cover)
                .collect();
            assert_eq!(served, reference, "{shards} shards ({exchange:?})");
        }
    }
}
