//! The Omega index for overlapping covers.
//!
//! Collins & Dent (1988), popularized for overlapping community evaluation
//! by Gregory (2011): the chance-corrected fraction of vertex *pairs* on
//! whose co-membership multiplicity the two covers agree. Complements NMI:
//! Omega is pair-based and penalizes disagreement on *how many* shared
//! communities a pair has, which NMI's per-community matching can miss.

use rslpa_graph::{Cover, FxHashMap};

/// Co-membership counts per unordered pair.
fn pair_counts(cover: &Cover) -> FxHashMap<(u32, u32), u32> {
    let mut counts: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for c in cover.communities() {
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                *counts.entry((u, v)).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Omega index between covers over `n` vertices; 1 for identical covers,
/// ≈0 for chance-level agreement (can be negative for anti-agreement).
pub fn omega_index(a: &Cover, b: &Cover, n: usize) -> f64 {
    assert!(n >= 2, "need at least two vertices");
    let total_pairs = (n * (n - 1) / 2) as f64;
    let ca = pair_counts(a);
    let cb = pair_counts(b);
    // Observed agreement: pairs with identical multiplicity. Pairs in
    // neither map agree at multiplicity 0.
    let mut agree = 0u64;
    let mut seen_either = 0u64;
    for (pair, &ma) in &ca {
        let mb = cb.get(pair).copied().unwrap_or(0);
        if ma == mb {
            agree += 1;
        }
        seen_either += 1;
    }
    for pair in cb.keys() {
        if !ca.contains_key(pair) {
            seen_either += 1; // multiplicities differ (0 vs >0): no agree
        }
    }
    let zero_zero = total_pairs - seen_either as f64;
    let observed = (agree as f64 + zero_zero) / total_pairs;
    // Expected agreement under independence: Σ_j P_A(j)·P_B(j).
    let hist = |counts: &FxHashMap<(u32, u32), u32>| -> FxHashMap<u32, f64> {
        let mut h: FxHashMap<u32, f64> = FxHashMap::default();
        for &m in counts.values() {
            *h.entry(m).or_insert(0.0) += 1.0;
        }
        let nonzero: f64 = h.values().sum();
        h.insert(0, total_pairs - nonzero);
        for v in h.values_mut() {
            *v /= total_pairs;
        }
        h
    };
    let ha = hist(&ca);
    let hb = hist(&cb);
    let expected: f64 = ha
        .iter()
        .filter_map(|(j, pa)| hb.get(j).map(|pb| pa * pb))
        .sum();
    if (1.0 - expected).abs() < 1e-12 {
        return 1.0; // both covers are trivial in the same way
    }
    (observed - expected) / (1.0 - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(cs: &[&[u32]]) -> Cover {
        Cover::new(cs.iter().map(|c| c.to_vec()))
    }

    #[test]
    fn identical_covers_score_one() {
        let a = cover(&[&[0, 1, 2], &[2, 3, 4]]);
        assert!((omega_index(&a, &a, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_cover_against_empty_is_low() {
        let a = cover(&[&[0, 1, 2, 3]]);
        let empty = Cover::default();
        let s = omega_index(&a, &empty, 8);
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn multiplicity_matters() {
        // Pair (0,1) shares two communities in A but only one in B: the
        // pair disagrees even though it is "together" in both.
        let a = cover(&[&[0, 1, 2], &[0, 1, 3]]);
        let b1 = cover(&[&[0, 1, 2], &[0, 1, 3]]);
        let b2 = cover(&[&[0, 1, 2], &[1, 3, 4]]);
        let n = 5;
        assert!(omega_index(&a, &b1, n) > omega_index(&a, &b2, n));
    }

    #[test]
    fn symmetric() {
        let a = cover(&[&[0, 1, 2], &[3, 4]]);
        let b = cover(&[&[0, 1], &[2, 3, 4]]);
        assert!((omega_index(&a, &b, 5) - omega_index(&b, &a, 5)).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_between_zero_and_one() {
        let a = cover(&[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let b = cover(&[&[0, 1, 2, 4], &[3, 5, 6, 7]]);
        let s = omega_index(&a, &b, 8);
        assert!(s > 0.0 && s < 1.0, "score {s}");
    }
}
