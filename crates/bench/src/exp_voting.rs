//! Figures 2–3 and Theorems 1–3: exact voting distributions.

use rslpa_baselines::voting::{
    plurality_win_distribution, theorem1_max_probabilities, uniform_distribution,
    voting_distribution,
};
use rslpa_graph::rng::DetRng;
use rslpa_graph::Label;

use crate::report::{f3, Table};

fn dist_row(labels: &[Label], dist: &rslpa_graph::FxHashMap<Label, f64>) -> Vec<String> {
    labels
        .iter()
        .map(|l| f3(dist.get(l).copied().unwrap_or(0.0)))
        .collect()
}

/// Fig. 2: plurality-vote win probabilities for the four voter settings.
pub fn fig2() {
    let settings: [(&str, Vec<Vec<Label>>); 4] = [
        (
            "(a) voters (1,2), (1,2), (1,1)",
            vec![vec![1, 2], vec![1, 2], vec![1, 1]],
        ),
        (
            "(b) voters (1,2), (1,2), (1,3)",
            vec![vec![1, 2], vec![1, 2], vec![1, 3]],
        ),
        (
            "(c) voters (2,2), (1,1), (1,1)",
            vec![vec![2, 2], vec![1, 1], vec![1, 1]],
        ),
        ("(d) voters (2,2), (1,1)", vec![vec![2, 2], vec![1, 1]]),
    ];
    let mut table = Table::new(
        "Fig. 2 — plurality voting win probabilities (exact)",
        &["setting", "P(1)", "P(2)", "P(3)"],
    );
    for (name, voters) in settings {
        let d = plurality_win_distribution(&voters);
        let mut row = vec![name.to_string()];
        row.extend(dist_row(&[1, 2, 3], &d));
        table.row(row);
    }
    table.print();
    println!(
        "note: under the uniform tie-breaking the paper's own Fig. 1 specifies, P(2) in (b)\n\
         rises to 1/3 (the prose says it \"drops\"); the non-local sensitivity the example\n\
         illustrates holds either way.\n"
    );
}

/// Fig. 3: voting vs uniform-picking over the fixed multiset.
pub fn fig3() {
    let m: Vec<Label> = vec![1, 2, 2, 2, 3, 3, 3, 4, 4, 5];
    let labels = [1, 2, 3, 4, 5];
    let mut table = Table::new(
        "Fig. 3 — M = (1,2,2,2,3,3,3,4,4,5)",
        &["process", "P(1)", "P(2)", "P(3)", "P(4)", "P(5)", "max"],
    );
    for (name, dist) in [
        ("(a) voting", voting_distribution(&m)),
        ("(b) uniform-pick", uniform_distribution(&m)),
    ] {
        let mut row = vec![name.to_string()];
        row.extend(dist_row(&labels, &dist));
        row.push(f3(dist.values().copied().fold(0.0, f64::max)));
        table.row(row);
    }
    table.print();
    println!("Theorem 1 visible in the last column: max P_u <= max P_v.\n");
}

/// Theorem 1 on random multisets: max P_u ≤ max P_v always.
pub fn thm1(trials: u64) {
    let mut rng = DetRng::new(17);
    let mut worst_gap = f64::INFINITY;
    let mut violations = 0u64;
    for _ in 0..trials {
        let len = 1 + rng.bounded(24) as usize;
        let m: Vec<Label> = (0..len).map(|_| rng.bounded(8) as Label).collect();
        let (pu, pv) = theorem1_max_probabilities(&m);
        if pu > pv + 1e-12 {
            violations += 1;
        }
        worst_gap = worst_gap.min(pv - pu);
    }
    let mut table = Table::new(
        "Theorem 1 — max Pu <= max Pv on random multisets",
        &["trials", "violations", "min (maxPv - maxPu)"],
    );
    table.row(vec![
        trials.to_string(),
        violations.to_string(),
        f3(worst_gap),
    ]);
    table.print();
    assert_eq!(violations, 0, "Theorem 1 must hold");
}

/// Theorems 2–3: pooled-union sampling ≡ (src, pos) sampling, Monte-Carlo.
pub fn thm23(trials: u64) {
    // Three neighbor sequences of equal length m = 4.
    let seqs: [&[Label]; 3] = [&[1, 1, 2, 3], &[2, 2, 2, 4], &[1, 3, 3, 4]];
    let mut rng = DetRng::new(23);
    let mut count_pair = rslpa_graph::FxHashMap::<Label, u64>::default();
    let mut count_pool = rslpa_graph::FxHashMap::<Label, u64>::default();
    for _ in 0..trials {
        // Process of Theorem 3: uniform (src, pos).
        let src = rng.bounded(3) as usize;
        let pos = rng.bounded(4) as usize;
        *count_pair.entry(seqs[src][pos]).or_insert(0) += 1;
        // Process of Theorem 2: every voter sends uniformly, pick from M.
        let m: Vec<Label> = seqs.iter().map(|s| s[rng.bounded(4) as usize]).collect();
        *count_pool.entry(m[rng.bounded(3) as usize]).or_insert(0) += 1;
    }
    // Analytic pooled frequency: f(l) / (n·m).
    let mut pooled = rslpa_graph::FxHashMap::<Label, f64>::default();
    for s in seqs {
        for &l in s {
            *pooled.entry(l).or_insert(0.0) += 1.0 / 12.0;
        }
    }
    let mut table = Table::new(
        "Theorems 2/3 — (src,pos) vs pooled-multiset sampling",
        &["label", "analytic", "(src,pos)", "pooled"],
    );
    let mut labels: Vec<Label> = pooled.keys().copied().collect();
    labels.sort_unstable();
    let mut max_err: f64 = 0.0;
    for l in labels {
        let a = pooled[&l];
        let p1 = *count_pair.get(&l).unwrap_or(&0) as f64 / trials as f64;
        let p2 = *count_pool.get(&l).unwrap_or(&0) as f64 / trials as f64;
        max_err = max_err.max((p1 - a).abs()).max((p2 - a).abs());
        table.row(vec![l.to_string(), f3(a), f3(p1), f3(p2)]);
    }
    table.print();
    println!("max deviation from analytic: {max_err:.4}\n");
    assert!(max_err < 0.01, "Monte-Carlo deviation too large: {max_err}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn voting_experiments_run() {
        super::fig2();
        super::fig3();
        super::thm1(2_000);
        super::thm23(100_000);
    }
}
