//! Statically interned span names: the serve-path taxonomy.
//!
//! Records store a `u16` name id instead of a string so a span record stays
//! four words; the table below maps ids back to names at export time. The
//! ids are shared across crates (`rslpa_core` emits mesh-level spans,
//! `rslpa_serve` everything else), which is why the taxonomy lives here in
//! the leaf crate rather than in the serving layer.
//!
//! | id | name              | lane        | covers                                        |
//! |----|-------------------|-------------|-----------------------------------------------|
//! | 0  | `queue_drain`     | maintenance | blocked on [`pop`]ping the edit queue          |
//! | 1  | `flush`           | maintenance | one micro-batch: resolve → repair → counters  |
//! | 2  | `resolve`         | maintenance | net-resolving queued ops against the graph    |
//! | 3  | `repair`          | maintenance | Correction Propagation over the dirty region  |
//! | 4  | `counter_upkeep`  | maintenance | central per-edge counter maintenance          |
//! | 5  | `publish`         | maintenance | snapshot publication, all sub-phases          |
//! | 6  | `publish_collect` | maintenance | collecting worker rows/histograms/weights     |
//! | 7  | `publish_weights` | maintenance | assembling + thresholding edge weights        |
//! | 8  | `publish_roster`  | maintenance | building + swapping the community snapshot    |
//! | 9  | `publish_migrate` | maintenance | repartitioning row migration                  |
//! | 10 | `mailbox_wait`    | worker      | blocked on the command sub-queue              |
//! | 11 | `shard_flush`     | worker      | applying a routed delta batch (phase A)       |
//! | 12 | `exchange`        | worker      | one exchange session (all rounds)             |
//! | 13 | `exchange_round`  | worker      | one mesh round: drain inbox, step, send       |
//! | 14 | `barrier_wait`    | worker      | parked at the mesh round barrier (total)      |
//! | 15 | `upkeep`          | worker      | shard-owned counter-partition upkeep          |
//! | 16 | `collect`         | worker      | packaging state for a publish collect         |
//! | 17 | `migrate`         | worker      | extract/adopt row migration                   |
//! | 18 | `barrier_arrive`  | worker      | barrier phase: waiting for stragglers         |
//! | 19 | `barrier_depart`  | worker      | barrier phase: release-to-resume latency      |
//!
//! [`pop`]: https://doc.rust-lang.org/std/sync/mpsc/

/// Maintenance lane: blocked waiting for edits on the queue.
pub const QUEUE_DRAIN: u16 = 0;
/// Maintenance lane: one full flush (resolve + repair + counter upkeep).
pub const FLUSH: u16 = 1;
/// Maintenance lane: net-resolving queued ops into an applicable batch.
pub const RESOLVE: u16 = 2;
/// Maintenance lane: the repair-engine apply (Correction Propagation).
pub const REPAIR: u16 = 3;
/// Maintenance lane: central per-edge common-label counter upkeep.
pub const COUNTER_UPKEEP: u16 = 4;
/// Maintenance lane: snapshot publication (parent of the sub-phases).
pub const PUBLISH: u16 = 5;
/// Maintenance lane: collecting worker contributions at publish time.
pub const PUBLISH_COLLECT: u16 = 6;
/// Maintenance lane: assembling and thresholding edge weights.
pub const PUBLISH_WEIGHTS: u16 = 7;
/// Maintenance lane: building and swapping the community snapshot.
pub const PUBLISH_ROSTER: u16 = 8;
/// Maintenance lane: publish-time repartitioning and row migration.
pub const PUBLISH_MIGRATE: u16 = 9;
/// Worker lane: blocked on the coordinator's command sub-queue.
pub const MAILBOX_WAIT: u16 = 10;
/// Worker lane: applying a routed delta batch (repair-wave phase A).
pub const SHARD_FLUSH: u16 = 11;
/// Worker lane: a whole exchange-to-quiescence session.
pub const EXCHANGE: u16 = 12;
/// Worker lane: one mesh round (drain inbox, step vertices, send).
pub const EXCHANGE_ROUND: u16 = 13;
/// Worker lane: parked at the mesh round barrier (arrive + depart).
pub const BARRIER_WAIT: u16 = 14;
/// Worker lane: shard-owned counter-partition upkeep.
pub const UPKEEP: u16 = 15;
/// Worker lane: packaging rows/weights for a publish collect.
pub const COLLECT: u16 = 16;
/// Worker lane: extract/adopt row migration during repartitioning.
pub const MIGRATE: u16 = 17;
/// Worker lane: barrier arrive phase — blocked until the round's leader
/// released (waiting for stragglers; protocol/imbalance cost).
pub const BARRIER_ARRIVE: u16 = 18;
/// Worker lane: barrier depart phase — between the leader's release and
/// this thread resuming (wakeup/scheduling latency).
pub const BARRIER_DEPART: u16 = 19;

/// The interned name table, indexed by span id.
pub const NAMES: &[&str] = &[
    "queue_drain",
    "flush",
    "resolve",
    "repair",
    "counter_upkeep",
    "publish",
    "publish_collect",
    "publish_weights",
    "publish_roster",
    "publish_migrate",
    "mailbox_wait",
    "shard_flush",
    "exchange",
    "exchange_round",
    "barrier_wait",
    "upkeep",
    "collect",
    "migrate",
    "barrier_arrive",
    "barrier_depart",
];

/// Resolve a span id to its interned name (`"?"` for out-of-table ids,
/// which only appear if a foreign producer wrote records).
pub fn name_of(id: u16) -> &'static str {
    NAMES.get(id as usize).copied().unwrap_or("?")
}
