//! Graph substrate for the rSLPA reproduction.
//!
//! This crate provides everything the higher layers need to talk about
//! *distributed, dynamic, undirected, unweighted ("binary") graphs*:
//!
//! * [`AdjacencyGraph`] — a mutable adjacency-list store with sorted
//!   neighbor lists, the working representation for dynamic graphs.
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot used by
//!   read-only passes (post-processing, metrics, partitioning).
//! * [`EditBatch`] / [`DynamicGraph`] — validated batches of edge
//!   insertions and deletions plus the per-vertex neighborhood deltas the
//!   incremental algorithm consumes (paper §IV).
//! * [`rng`] — a deterministic, counter-based random number generator so
//!   that every random pick made by Algorithm 1 is a pure function of
//!   `(seed, vertex, iteration, epoch)`. This is what makes label
//!   propagation *trackable* ("pretend that we use the same series of
//!   random numbers", paper §IV-A).
//! * [`fxhash`] — an FxHash-style fast hasher (integer-keyed hash maps are
//!   on the hot path everywhere; the std SipHash is measurably slower).
//! * [`connectivity`] — sequential union-find connected components, the
//!   centralized counterpart of the distributed hash-to-min pass.
//! * [`partition`] — vertex partitioners for the distributed simulator
//!   and the sharded serve path (hash, block, BFS-locality, and
//!   community-aligned planned partitions).
//! * [`sharding`] — partition-aware edit routing and boundary-vertex
//!   bookkeeping for sharded maintenance.
//! * [`io`] — plain-text edge-list reading/writing and the paper's data
//!   preparation pipeline (symmetrize, dedupe, drop self-loops, §V-B1).
//!
//! # Example
//!
//! ```
//! use rslpa_graph::{AdjacencyGraph, DynamicGraph, EditBatch};
//!
//! let g = AdjacencyGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
//! let mut dg = DynamicGraph::new(g);
//! let applied = dg.apply(&EditBatch::from_lists([(0, 3)], [(1, 2)])).unwrap();
//! assert_eq!(dg.graph().num_edges(), 3);
//! // Per-vertex neighborhood deltas drive incremental repair downstream.
//! assert!(applied.deltas[&0].added.contains(&3));
//! assert!(applied.deltas[&1].removed.contains(&2));
//! ```

pub mod adjacency;
pub mod builder;
pub mod connectivity;
pub mod cover;
pub mod csr;
pub mod dynamic;
pub mod edits;
pub mod fxhash;
pub mod io;
pub mod mem;
pub mod paged;
pub mod partition;
pub mod rng;
pub mod sharding;
pub mod slab;
pub mod stats;

pub use adjacency::{AdjacencyGraph, StorageBackend};
pub use builder::GraphBuilder;
pub use connectivity::{connected_components, UnionFind};
pub use cover::Cover;
pub use csr::CsrGraph;
pub use dynamic::{AppliedBatch, DynamicGraph, VertexDelta};
pub use edits::{EditBatch, EditError};
pub use fxhash::{FxHashMap, FxHashSet};
pub use mem::{MemAccounted, MemFootprint};
pub use paged::{AdjacencyStore, PagedAdjacency};
pub use partition::{BlockPartitioner, HashPartitioner, HubPull, Partitioner, PlannedPartitioner};
pub use rng::{DetRng, PickKey};
pub use sharding::{
    compact_slot_deltas, split_deltas, split_slot_deltas, BoundaryTracker, SlotDelta,
};
pub use slab::SlabRows;
pub use stats::GraphStats;

/// Vertex identifier. Graphs are addressed with dense ids `0..n`.
///
/// `u32` keeps the per-label provenance state of rSLPA at 4 bytes per entry
/// (the paper's largest graph has 6.65M vertices, well within range).
pub type VertexId = u32;

/// A community label. Labels are seeded with vertex ids (paper §II-B), so
/// they share the vertex id space.
pub type Label = u32;
