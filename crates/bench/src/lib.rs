//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The `repro` binary dispatches to one module per experiment family; see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! outputs. All experiments run at a laptop-friendly default scale that
//! preserves the paper's *shapes* (who wins, by what factor, where curves
//! bend); `--paper-scale` restores the original sizes where feasible.

pub mod exp_ablations;
pub mod exp_barrier;
pub mod exp_churn;
pub mod exp_dynamic;
pub mod exp_scale;
pub mod exp_serve;
pub mod exp_synthetic;
pub mod exp_trace;
pub mod exp_voting;
pub mod exp_web;
pub mod exp_weights;
pub mod report;
pub mod scale;

pub use report::Table;
pub use scale::Scale;

/// Cores available to this run, as recorded in every benchmark JSON's
/// `config.cores` field — multi-core reruns of `repro serve*` /
/// `repro weights` are self-describing (a 1-core sweep measures
/// coordination overhead + equivalence, not parallel speedup).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}
