//! The BSP engine: superstep loop, message routing, executors.

use rslpa_graph::{CsrGraph, Partitioner, VertexId};

use crate::program::{Aggregates, Ctx, VertexProgram};
use crate::stats::{RunStats, SuperstepStats};

/// How supersteps are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// One logical worker at a time, in worker order. Deterministic and
    /// allocation-friendly; the default for tests.
    Sequential,
    /// One OS thread per worker via `std::thread::scope`. Produces
    /// bit-identical results to `Sequential` (inboxes are canonically
    /// ordered at consumption).
    Parallel,
}

/// Per-worker, per-vertex pending inboxes.
type WorkerInboxes<M> = Vec<Vec<Vec<(VertexId, M)>>>;

/// Output of one worker for one superstep.
struct WorkerOutput<M> {
    /// `(to, from, payload)` in emission order.
    outbox: Vec<(VertexId, VertexId, M)>,
    aggregates: Aggregates,
    processed: u64,
    compute: u64,
}

/// Runs a [`VertexProgram`] over a partitioned graph.
pub struct BspEngine<'g, P: VertexProgram> {
    graph: &'g CsrGraph,
    program: P,
    executor: Executor,
    /// Worker owning each vertex.
    owner: Vec<u32>,
    /// Index of each vertex within its worker's dense arrays.
    local_idx: Vec<u32>,
    /// Vertices per worker, ascending.
    worker_vertices: Vec<Vec<VertexId>>,
    /// Vertex states per worker, parallel to `worker_vertices`.
    worker_states: Vec<Vec<P::State>>,
    /// Pending inboxes per worker/vertex.
    worker_inboxes: WorkerInboxes<P::Msg>,
    /// `remain_active` flags per worker/vertex.
    worker_active: Vec<Vec<bool>>,
    aggregates: Aggregates,
    stats: RunStats,
    superstep: usize,
    started: bool,
}

impl<'g, P: VertexProgram> BspEngine<'g, P>
where
    P::Msg: Send,
    P::State: Send,
{
    /// Plan an engine over `graph` with the given partitioner and executor.
    pub fn new(
        graph: &'g CsrGraph,
        program: P,
        partitioner: &dyn Partitioner,
        executor: Executor,
    ) -> Self {
        let n = graph.num_vertices();
        let num_workers = partitioner.num_parts();
        let mut owner = vec![0u32; n];
        let mut local_idx = vec![0u32; n];
        let mut worker_vertices = vec![Vec::new(); num_workers];
        for v in 0..n as VertexId {
            let w = partitioner.assign(v);
            owner[v as usize] = w as u32;
            local_idx[v as usize] = worker_vertices[w].len() as u32;
            worker_vertices[w].push(v);
        }
        let worker_inboxes = worker_vertices
            .iter()
            .map(|vs| vec![Vec::new(); vs.len()])
            .collect();
        let worker_active = worker_vertices
            .iter()
            .map(|vs| vec![false; vs.len()])
            .collect();
        let worker_states = worker_vertices
            .iter()
            .map(|vs| Vec::with_capacity(vs.len()))
            .collect();
        Self {
            graph,
            program,
            executor,
            owner,
            local_idx,
            worker_vertices,
            worker_states,
            worker_inboxes,
            worker_active,
            aggregates: Aggregates::default(),
            stats: RunStats::default(),
            superstep: 0,
            started: false,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.worker_vertices.len()
    }

    /// Run until quiescent or `max_supersteps` executed. May be called
    /// repeatedly to continue a paused run.
    pub fn run(&mut self, max_supersteps: usize) -> &RunStats {
        for _ in 0..max_supersteps {
            let quiescent = self.run_superstep();
            if quiescent {
                break;
            }
        }
        &self.stats
    }

    /// Execute exactly one superstep. Returns `true` when the computation
    /// is quiescent (no messages in flight, no vertex active).
    pub fn run_superstep(&mut self) -> bool {
        let init_round = !self.started;
        self.started = true;
        let num_workers = self.worker_vertices.len();

        let outputs: Vec<WorkerOutput<P::Msg>> = match self.executor {
            Executor::Sequential => {
                let mut outs = Vec::with_capacity(num_workers);
                for w in 0..num_workers {
                    outs.push(Self::run_worker(
                        self.graph,
                        &self.program,
                        self.superstep,
                        init_round,
                        &self.worker_vertices[w],
                        &mut self.worker_states[w],
                        &mut self.worker_inboxes[w],
                        &mut self.worker_active[w],
                        &self.aggregates,
                    ));
                }
                outs
            }
            Executor::Parallel => {
                let graph = self.graph;
                let program = &self.program;
                let superstep = self.superstep;
                let aggregates = &self.aggregates;
                let vertices = &self.worker_vertices;
                let states = &mut self.worker_states;
                let inboxes = &mut self.worker_inboxes;
                let actives = &mut self.worker_active;
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(num_workers);
                    for (((vs, st), ib), ac) in vertices
                        .iter()
                        .zip(states.iter_mut())
                        .zip(inboxes.iter_mut())
                        .zip(actives.iter_mut())
                    {
                        handles.push(scope.spawn(move || {
                            Self::run_worker(
                                graph, program, superstep, init_round, vs, st, ib, ac, aggregates,
                            )
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                })
            }
        };

        // Merge aggregates and stats in worker order (deterministic).
        let mut next_agg = Aggregates::default();
        let mut step_stats = SuperstepStats::default();
        let mut max_compute = 0u64;
        let mut remote_out = vec![0u64; num_workers];
        let mut remote_in = vec![0u64; num_workers];
        for (w, out) in outputs.iter().enumerate() {
            next_agg.merge(&out.aggregates);
            step_stats.active_vertices += out.processed;
            max_compute = max_compute.max(out.compute);
            for &(to, from, ref msg) in &out.outbox {
                let bytes = self.program.msg_bytes(msg);
                step_stats.messages += 1;
                step_stats.bytes += bytes;
                let dest = self.owner[to as usize] as usize;
                if dest != w {
                    debug_assert_eq!(self.owner[from as usize] as usize, w);
                    step_stats.remote_messages += 1;
                    step_stats.remote_bytes += bytes;
                    remote_out[w] += bytes;
                    remote_in[dest] += bytes;
                }
            }
        }
        step_stats.max_worker_compute = max_compute;
        step_stats.max_worker_remote_bytes = remote_out
            .iter()
            .zip(&remote_in)
            .map(|(o, i)| o + i)
            .max()
            .unwrap_or(0);

        // Deliver messages.
        let mut delivered = 0u64;
        for out in outputs {
            for (to, from, msg) in out.outbox {
                let w = self.owner[to as usize] as usize;
                let li = self.local_idx[to as usize] as usize;
                self.worker_inboxes[w][li].push((from, msg));
                delivered += 1;
            }
        }

        self.stats.supersteps.push(step_stats);
        self.aggregates = next_agg;
        self.superstep += 1;

        let any_active = self.worker_active.iter().any(|ws| ws.iter().any(|&a| a));
        delivered == 0 && !any_active
    }

    #[allow(clippy::too_many_arguments)]
    fn run_worker(
        graph: &CsrGraph,
        program: &P,
        superstep: usize,
        init_round: bool,
        vertices: &[VertexId],
        states: &mut Vec<P::State>,
        inboxes: &mut [Vec<(VertexId, P::Msg)>],
        actives: &mut [bool],
        aggregates_prev: &Aggregates,
    ) -> WorkerOutput<P::Msg> {
        let mut out = WorkerOutput {
            outbox: Vec::new(),
            aggregates: Aggregates::default(),
            processed: 0,
            compute: 0,
        };
        for (i, &v) in vertices.iter().enumerate() {
            if !init_round && !actives[i] && inboxes[i].is_empty() {
                continue;
            }
            let mut inbox = std::mem::take(&mut inboxes[i]);
            // Canonical inbox order: ascending sender, per-sender emission
            // order preserved (stable sort). This is what makes parallel and
            // sequential execution bit-identical.
            inbox.sort_by_key(|&(from, _)| from);
            let mut keep = false;
            let mut vertex_outbox: Vec<(VertexId, P::Msg)> = Vec::new();
            {
                let mut ctx = Ctx {
                    vertex: v,
                    superstep,
                    graph,
                    outbox: &mut vertex_outbox,
                    aggregates_prev,
                    aggregates_next: &mut out.aggregates,
                    keep_active: &mut keep,
                };
                if init_round {
                    let state = program.init(&mut ctx);
                    states.push(state);
                } else {
                    program.step(&mut ctx, &mut states[i], &inbox);
                }
            }
            actives[i] = keep;
            out.processed += 1;
            out.compute += 1 + inbox.len() as u64;
            out.outbox
                .extend(vertex_outbox.into_iter().map(|(to, msg)| (to, v, msg)));
        }
        out
    }

    /// State of vertex `v` (panics before the init superstep ran).
    pub fn state(&self, v: VertexId) -> &P::State {
        let w = self.owner[v as usize] as usize;
        &self.worker_states[w][self.local_idx[v as usize] as usize]
    }

    /// Consume the engine, returning states in vertex order.
    pub fn into_states(mut self) -> Vec<P::State> {
        let n = self.owner.len();
        let mut per_worker: Vec<std::vec::IntoIter<P::State>> =
            self.worker_states.drain(..).map(Vec::into_iter).collect();
        let mut states = Vec::with_capacity(n);
        for v in 0..n {
            let w = self.owner[v] as usize;
            states.push(per_worker[w].next().expect("state missing"));
        }
        states
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Aggregates from the most recent superstep.
    pub fn aggregates(&self) -> &Aggregates {
        &self.aggregates
    }

    /// Borrow the program back (e.g. to read configuration).
    pub fn program(&self) -> &P {
        &self.program
    }
}

// The engine needs to update `self.aggregates` after the merge above; done
// here to keep the borrow checker happy about `outputs` consuming fields.
impl<'g, P: VertexProgram> BspEngine<'g, P>
where
    P::Msg: Send,
    P::State: Send,
{
    /// Run a closure over every vertex state in vertex order.
    pub fn for_each_state(&self, mut f: impl FnMut(VertexId, &P::State)) {
        for v in 0..self.owner.len() as VertexId {
            f(v, self.state(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rslpa_graph::{AdjacencyGraph, HashPartitioner};

    /// Each vertex floods its id for `rounds` rounds and remembers the max
    /// id it has seen — a tiny, fully deterministic diffusion program.
    struct MaxFlood {
        rounds: usize,
    }

    impl VertexProgram for MaxFlood {
        type Msg = u32;
        type State = u32;

        fn init(&self, ctx: &mut Ctx<'_, u32>) -> u32 {
            let v = ctx.vertex();
            for &n in ctx.neighbors() {
                ctx.send(n, v);
            }
            v
        }

        fn step(&self, ctx: &mut Ctx<'_, u32>, state: &mut u32, inbox: &[(u32, u32)]) {
            let before = *state;
            for &(_, m) in inbox {
                *state = (*state).max(m);
            }
            if *state != before && ctx.superstep() < self.rounds {
                let s = *state;
                for &n in ctx.neighbors() {
                    ctx.send(n, s);
                }
            }
        }
    }

    fn path_graph(n: usize) -> CsrGraph {
        let g = AdjacencyGraph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)));
        CsrGraph::from_adjacency(&g)
    }

    #[test]
    fn max_flood_converges_on_path() {
        let g = path_graph(6);
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 100 },
            &HashPartitioner::new(3),
            Executor::Sequential,
        );
        eng.run(100);
        for v in 0..6 {
            assert_eq!(*eng.state(v), 5, "vertex {v} should see the max id");
        }
    }

    #[test]
    fn sequential_and_parallel_agree_bitwise() {
        let g = path_graph(40);
        let p = HashPartitioner::new(4);
        let mut seq = BspEngine::new(&g, MaxFlood { rounds: 100 }, &p, Executor::Sequential);
        seq.run(200);
        let mut par = BspEngine::new(&g, MaxFlood { rounds: 100 }, &p, Executor::Parallel);
        par.run(200);
        let s1 = seq.into_states();
        let s2 = par.into_states();
        assert_eq!(s1, s2);
    }

    #[test]
    fn stats_count_messages_and_rounds() {
        let g = path_graph(4); // edges: 0-1, 1-2, 2-3
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 100 },
            &HashPartitioner::new(2),
            Executor::Sequential,
        );
        eng.run(100);
        let stats = eng.stats();
        // Init superstep sends one message per half-edge = 6 messages.
        assert_eq!(stats.supersteps[0].messages, 6);
        assert_eq!(stats.supersteps[0].active_vertices, 4);
        assert!(stats.rounds() >= 3, "propagation takes multiple rounds");
        // Final round delivers nothing and engine stops.
        assert!(stats.total_messages() > 0);
    }

    #[test]
    fn remote_messages_do_not_exceed_total() {
        let g = path_graph(20);
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 100 },
            &HashPartitioner::new(4),
            Executor::Sequential,
        );
        eng.run(100);
        let s = eng.stats();
        assert!(s.total_remote_messages() <= s.total_messages());
        assert!(
            s.total_remote_messages() > 0,
            "hash partition of a path must cut edges"
        );
    }

    #[test]
    fn single_worker_has_no_remote_traffic() {
        let g = path_graph(10);
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 100 },
            &HashPartitioner::new(1),
            Executor::Sequential,
        );
        eng.run(100);
        assert_eq!(eng.stats().total_remote_messages(), 0);
    }

    #[test]
    fn into_states_is_vertex_ordered() {
        let g = path_graph(10);
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 0 },
            &HashPartitioner::new(3),
            Executor::Sequential,
        );
        eng.run(1);
        let states = eng.into_states();
        assert_eq!(states.len(), 10);
        // With rounds = 0 nothing propagates past init; state == own id
        // except where a neighbor's init message already arrived (none,
        // since steps beyond init are suppressed by rounds=0 only after
        // receipt). Here we only check ordering of the id-initialized part.
        for (v, &s) in states.iter().enumerate() {
            assert!(s >= v as u32);
        }
    }

    /// Aggregator plumbing: every vertex contributes its degree at init;
    /// next superstep everyone can read the global min/max/sum.
    struct DegreeAgg;

    impl VertexProgram for DegreeAgg {
        type Msg = ();
        type State = (f64, f64, f64);

        fn init(&self, ctx: &mut Ctx<'_, ()>) -> Self::State {
            ctx.aggregate(ctx.neighbors().len() as f64);
            ctx.remain_active();
            (0.0, 0.0, 0.0)
        }

        fn step(&self, ctx: &mut Ctx<'_, ()>, state: &mut Self::State, _inbox: &[(u32, ())]) {
            let a = ctx.aggregates();
            *state = (a.min, a.max, a.sum);
        }
    }

    #[test]
    fn aggregates_visible_next_superstep() {
        let g = path_graph(5); // degrees: 1,2,2,2,1 -> min 1, max 2, sum 8
        let mut eng = BspEngine::new(
            &g,
            DegreeAgg,
            &HashPartitioner::new(2),
            Executor::Sequential,
        );
        eng.run(2);
        for v in 0..5 {
            let &(min, max, sum) = eng.state(v);
            assert_eq!((min, max, sum), (1.0, 2.0, 8.0));
        }
    }

    #[test]
    fn quiescence_detected() {
        let g = path_graph(3);
        let mut eng = BspEngine::new(
            &g,
            MaxFlood { rounds: 100 },
            &HashPartitioner::new(2),
            Executor::Sequential,
        );
        // Run with a generous budget; engine must stop early.
        eng.run(1000);
        assert!(eng.stats().rounds() < 20);
    }
}
