//! Distributed post-processing (paper §III-B's round/cost budget).
//!
//! Three phases, mirroring how the paper's Spark implementation composes
//! jobs:
//!
//! 1. **Weights** — one round of histogram exchange (`O(|E|)` messages
//!    with `O(T)`-sized payloads: the expensive part that makes rSLPA's
//!    post-processing slower than SLPA's in Fig. 8), one echo round, and
//!    an aggregator round for τ2.
//! 2. **τ1 selection** — "constant times of thresholding and finding
//!    connected components": a bounded set of candidate thresholds (all
//!    distinct weights when few, weight quantiles otherwise), each
//!    evaluated with a filtered hash-to-min run (`O(log d)` rounds each).
//! 3. **Extraction** — one final filtered components run plus the weak-
//!    attachment round.
//!
//! Every phase accumulates into one [`RunStats`] so the bench harness can
//! price the full pipeline with the cost model.

use rslpa_distsim::{distributed_components, BspEngine, Ctx, Executor, RunStats, VertexProgram};
use rslpa_graph::{CsrGraph, FxHashMap, Label, Partitioner, VertexId};

use crate::postprocess::{extract_communities, sequence_similarity, PostprocessResult};
use crate::state::LabelState;

/// Histogram-exchange program: computes `w_uv` for every edge.
///
/// Round 0: every vertex ships its `(label, count)` histogram to its
/// *smaller-id* neighbors (each edge is weighed once, at its lower
/// endpoint). Round 1: lower endpoints compute weights and echo them back.
/// Round 2: everyone contributes its incident maximum to the aggregator
/// (global min = τ2).
struct WeightProgram<'a> {
    state: &'a LabelState,
}

/// Per-vertex output: weights of edges this vertex owns (`v < neighbor`),
/// and the vertex's maximum incident weight.
#[derive(Clone, Debug, Default)]
struct WeightState {
    owned: Vec<(VertexId, f64)>,
    max_incident: f64,
}

/// Histogram or echoed weight.
#[derive(Clone, Debug)]
enum WeightMsg {
    Histogram(Vec<(Label, u32)>),
    Echo(f64),
}

impl VertexProgram for WeightProgram<'_> {
    type Msg = WeightMsg;
    type State = WeightState;

    fn init(&self, ctx: &mut Ctx<'_, WeightMsg>) -> WeightState {
        let v = ctx.vertex();
        let hist = self.state.histogram(v);
        for &u in ctx.neighbors() {
            if u < v {
                ctx.send(u, WeightMsg::Histogram(hist.clone()));
            }
        }
        if !ctx.neighbors().is_empty() {
            // Stay scheduled through superstep 2: every vertex knows all
            // its incident weights only after the echo round, and all τ2
            // contributions must land in the same superstep (the engine
            // exposes the latest superstep's aggregates).
            ctx.remain_active();
        }
        WeightState {
            owned: Vec::new(),
            max_incident: f64::NEG_INFINITY,
        }
    }

    fn step(
        &self,
        ctx: &mut Ctx<'_, WeightMsg>,
        state: &mut WeightState,
        inbox: &[(VertexId, WeightMsg)],
    ) {
        let v = ctx.vertex();
        let m = self.state.iterations() + 1;
        let mut my_hist: Option<Vec<(Label, u32)>> = None;
        for (from, msg) in inbox {
            match msg {
                WeightMsg::Histogram(h) => {
                    debug_assert_eq!(ctx.superstep(), 1, "histograms arrive in round 1");
                    let mine = my_hist.get_or_insert_with(|| self.state.histogram(v));
                    let w = sequence_similarity(mine, h, m);
                    state.owned.push((*from, w));
                    state.max_incident = state.max_incident.max(w);
                    ctx.send(*from, WeightMsg::Echo(w));
                }
                WeightMsg::Echo(w) => {
                    debug_assert_eq!(ctx.superstep(), 2, "echoes arrive in round 2");
                    state.max_incident = state.max_incident.max(*w);
                }
            }
        }
        match ctx.superstep() {
            1 => ctx.remain_active(),
            2 if state.max_incident.is_finite() => {
                ctx.aggregate(state.max_incident);
            }
            _ => {}
        }
    }

    fn msg_bytes(&self, msg: &WeightMsg) -> u64 {
        match msg {
            WeightMsg::Histogram(h) => (h.len() * 8) as u64,
            WeightMsg::Echo(_) => 8,
        }
    }
}

/// Default number of τ1 candidates evaluated in the distributed sweep —
/// the paper's "constant times of thresholding and finding connected
/// components".
pub const TAU1_CANDIDATES: usize = 8;

/// Distributed post-processing with the default candidate budget.
pub fn postprocess_bsp(
    graph: &CsrGraph,
    state: &LabelState,
    partitioner: &dyn Partitioner,
    executor: Executor,
) -> (PostprocessResult, RunStats) {
    postprocess_bsp_with_candidates(graph, state, partitioner, executor, TAU1_CANDIDATES)
}

/// Distributed post-processing pipeline. Returns the result plus the
/// accumulated communication statistics of every phase.
///
/// `tau1_candidates` bounds the number of filtered component runs in the
/// τ1 sweep; when the graph has at most that many distinct edge weights
/// the sweep is exhaustive and the result matches the centralized
/// [`crate::postprocess::postprocess`] exactly.
pub fn postprocess_bsp_with_candidates(
    graph: &CsrGraph,
    state: &LabelState,
    partitioner: &dyn Partitioner,
    executor: Executor,
    tau1_candidates: usize,
) -> (PostprocessResult, RunStats) {
    let n = graph.num_vertices();
    let mut stats = RunStats::default();

    // --- Phase 1: weights + τ2 ---
    let mut engine = BspEngine::new(graph, WeightProgram { state }, partitioner, executor);
    engine.run(4);
    stats.extend(engine.stats());
    // τ2: min over per-vertex maxima. Vertices whose only weights arrived
    // as echoes contributed in their echo round; owners contributed too.
    let tau2_agg = engine.aggregates().min;
    let mut weights: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(graph.num_edges());
    engine.for_each_state(|v, ws| {
        for &(u, w) in &ws.owned {
            debug_assert!(v < u);
            weights.push((v, u, w));
        }
    });
    weights.sort_unstable_by_key(|a| (a.0, a.1));
    let tau2 = if tau2_agg.is_finite() { tau2_agg } else { 1.0 };

    // --- Phase 2: τ1 candidates via repeated filtered components ---
    let mut distinct: Vec<f64> = weights
        .iter()
        .map(|&(_, _, w)| w)
        .filter(|&w| w >= tau2)
        .collect();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    distinct.dedup();
    let candidates: Vec<f64> = if distinct.len() <= tau1_candidates || tau1_candidates < 2 {
        distinct
    } else {
        // Evenly spaced quantiles of the distinct weights.
        let mut c: Vec<f64> = (0..tau1_candidates)
            .map(|i| distinct[i * (distinct.len() - 1) / (tau1_candidates - 1)])
            .collect();
        c.dedup();
        c
    };
    let weight_of: FxHashMap<(VertexId, VertexId), f64> =
        weights.iter().map(|&(u, v, w)| ((u, v), w)).collect();
    let edge_weight = |a: VertexId, b: VertexId| -> f64 {
        let key = (a.min(b), a.max(b));
        weight_of.get(&key).copied().unwrap_or(0.0)
    };
    let nf = n as f64;
    let entropy_of_labels = |labels: &[VertexId]| -> f64 {
        let mut sizes: FxHashMap<VertexId, usize> = FxHashMap::default();
        for &l in labels {
            *sizes.entry(l).or_insert(0) += 1;
        }
        sizes
            .values()
            .filter(|&&s| s >= 2)
            .map(|&s| {
                let p = s as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let mut best = (tau2, f64::NEG_INFINITY);
    for &tau in &candidates {
        let (labels, cc_stats) = distributed_components(
            graph,
            |a, b| edge_weight(a, b) >= tau,
            partitioner,
            executor,
            10_000,
        );
        stats.extend(&cc_stats);
        let e = entropy_of_labels(&labels);
        if e > best.1 + 1e-15 || (e >= best.1 - 1e-15 && tau > best.0) {
            best = (tau, e);
        }
    }
    let (tau1, entropy) = if best.1.is_finite() {
        best
    } else {
        (tau2, 0.0)
    };

    // --- Phase 3: final extraction (one more filtered run + attachment).
    let (_, final_stats) = distributed_components(
        graph,
        |a, b| edge_weight(a, b) >= tau1,
        partitioner,
        executor,
        10_000,
    );
    stats.extend(&final_stats);
    let cover = extract_communities(n, &weights, tau1, tau2);
    (
        PostprocessResult {
            cover,
            tau1,
            tau2,
            entropy,
            weights,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::postprocess;
    use crate::propagation::run_propagation;
    use rslpa_graph::{AdjacencyGraph, HashPartitioner};

    fn two_cliques() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(8);
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    g.insert_edge(i, j);
                }
            }
        }
        g.insert_edge(3, 4);
        g
    }

    #[test]
    fn matches_centralized_on_small_graphs() {
        let g = two_cliques();
        let csr = CsrGraph::from_adjacency(&g);
        let state = run_propagation(&g, 40, 7);
        let central = postprocess(&g, &state, None);
        let (bsp, _) = postprocess_bsp_with_candidates(
            &csr,
            &state,
            &HashPartitioner::new(3),
            Executor::Sequential,
            usize::MAX,
        );
        // Few distinct weights ⇒ the candidate set is exhaustive and the
        // sweep must find the same (τ1, τ2, cover).
        assert!((central.tau2 - bsp.tau2).abs() < 1e-12);
        assert!(
            (central.tau1 - bsp.tau1).abs() < 1e-12,
            "{} vs {}",
            central.tau1,
            bsp.tau1
        );
        assert_eq!(central.cover, bsp.cover);
        assert_eq!(central.weights, bsp.weights);
    }

    #[test]
    fn histogram_traffic_dominates() {
        let g = two_cliques();
        let csr = CsrGraph::from_adjacency(&g);
        let state = run_propagation(&g, 40, 7);
        let (_, stats) =
            postprocess_bsp(&csr, &state, &HashPartitioner::new(3), Executor::Sequential);
        // Histogram round: one message per edge, each ≥ 8 bytes/entry —
        // the O(|E|·T)-byte phase the paper charges to post-processing.
        assert!(stats.total_bytes() > (csr.num_edges() * 8) as u64);
        assert!(stats.rounds() > 3, "weights + sweeps + final extraction");
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_cliques();
        let csr = CsrGraph::from_adjacency(&g);
        let state = run_propagation(&g, 30, 2);
        let p = HashPartitioner::new(4);
        let (a, _) = postprocess_bsp(&csr, &state, &p, Executor::Sequential);
        let (b, _) = postprocess_bsp(&csr, &state, &p, Executor::Parallel);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.tau1, b.tau1);
    }
}
