//! The flight recorder: per-lane bounded rings of fixed-size records.
//!
//! Layout per lane (one lane per instrumented thread):
//!
//! ```text
//! head ───────────────┐  (total records ever written; slot = head % cap)
//!                     ▼
//! versions: [v0][v1][v2][v3] ...   seqlock per slot (odd = write in flight)
//! words:    [meta|start|dur|aux]   4 × u64 per slot, all atomics
//! ```
//!
//! The writer side is wait-free and single-writer per lane: it bumps the
//! slot's version to odd, stores the four payload words, bumps the version
//! to even, then advances `head`. A drain validates each slot's version
//! before and after reading the payload and skips (counting) slots caught
//! mid-write, so concurrent readers never see a torn record. When `head`
//! outruns the capacity the oldest records are overwritten; the per-lane
//! drop counter is exactly `head - capacity` once the ring has wrapped.

use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::span::TraceWriter;

/// Words per record slot: packed meta, start ns, duration ns, aux payload.
const RECORD_WORDS: usize = 4;
/// Seqlock validation attempts per slot before the slot counts as torn.
const READ_RETRIES: usize = 8;

/// What a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A duration: `start_ns .. start_ns + dur_ns`.
    Span,
    /// A point event; `dur_ns` is zero.
    Instant,
}

/// One decoded flight-recorder record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// Which lane (thread) wrote the record: 0 = maintenance, 1+s = shard s.
    pub lane: u16,
    /// Interned span name id (see [`crate::names`]).
    pub name: u16,
    /// Span or instant event.
    pub kind: RecordKind,
    /// Per-lane write sequence number (monotone, wraps at `u32::MAX`).
    pub seq: u32,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Free-form payload (batch sizes, round indices, ...).
    pub aux: u64,
}

fn pack_meta(name: u16, kind: RecordKind, seq: u32) -> u64 {
    let k = match kind {
        RecordKind::Span => 0u64,
        RecordKind::Instant => 1u64,
    };
    (u64::from(name) << 48) | (k << 40) | u64::from(seq)
}

fn unpack_meta(meta: u64) -> (u16, RecordKind, u32) {
    let name = (meta >> 48) as u16;
    let kind = if (meta >> 40) & 0xff == 0 {
        RecordKind::Span
    } else {
        RecordKind::Instant
    };
    (name, kind, meta as u32)
}

/// One single-writer ring. All state is atomic so drains may run
/// concurrently with the owning writer thread.
struct Lane {
    head: AtomicU64,
    versions: Box<[AtomicU32]>,
    words: Box<[AtomicU64]>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            versions: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            words: (0..capacity * RECORD_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.versions.len()
    }

    /// Wait-free write; must only be called from the lane's owner thread.
    fn write(&self, name: u16, kind: RecordKind, start_ns: u64, dur_ns: u64, aux: u64) {
        let cap = self.capacity();
        if cap == 0 {
            return;
        }
        let head = self.head.load(Ordering::Relaxed);
        let slot = (head % cap as u64) as usize;
        let v = self.versions[slot].load(Ordering::Relaxed);
        // Seqlock write protocol (Boehm): odd version, release fence,
        // relaxed payload stores, even version with release.
        self.versions[slot].store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let base = slot * RECORD_WORDS;
        self.words[base].store(pack_meta(name, kind, head as u32), Ordering::Relaxed);
        self.words[base + 1].store(start_ns, Ordering::Relaxed);
        self.words[base + 2].store(dur_ns, Ordering::Relaxed);
        self.words[base + 3].store(aux, Ordering::Relaxed);
        self.versions[slot].store(v.wrapping_add(2), Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Seqlock-validated slot read; `None` when the writer kept racing us.
    fn read_slot(&self, slot: usize) -> Option<(u64, u64, u64, u64)> {
        for _ in 0..READ_RETRIES {
            let v1 = self.versions[slot].load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let base = slot * RECORD_WORDS;
            let meta = self.words[base].load(Ordering::Relaxed);
            let start = self.words[base + 1].load(Ordering::Relaxed);
            let dur = self.words[base + 2].load(Ordering::Relaxed);
            let aux = self.words[base + 3].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let v2 = self.versions[slot].load(Ordering::Relaxed);
            if v1 == v2 {
                return Some((meta, start, dur, aux));
            }
        }
        None
    }

    fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.capacity() as u64)
    }
}

/// The flight recorder: an epoch clock, an enabled flag, and one ring per
/// instrumented thread. Cheap to share via `Arc`; see the crate docs for
/// the write/drain contract.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    lanes: Vec<Lane>,
}

impl Tracer {
    /// A recorder with `lanes` rings of `capacity_per_lane` records each,
    /// enabled from the start. Lane 0 is the maintenance thread by
    /// convention; lanes `1 + s` belong to shard worker `s`.
    pub fn new(lanes: usize, capacity_per_lane: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            lanes: (0..lanes).map(|_| Lane::new(capacity_per_lane)).collect(),
        }
    }

    /// A permanently-off recorder (no lanes, no storage). Span sites pay
    /// exactly one relaxed load against it; [`Tracer::set_enabled`] is a
    /// no-op so it can never start recording into missing lanes.
    pub fn disabled() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            lanes: Vec::new(),
        }
    }

    /// Whether span sites currently record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime (ignored on a
    /// [`Tracer::disabled`] recorder, which has no storage).
    pub fn set_enabled(&self, on: bool) {
        if !self.lanes.is_empty() {
            self.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds since the recorder was constructed.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A writer handle for `lane`. The ring is single-writer: at most one
    /// thread may push through handles to a given lane at a time (clones
    /// are for handing the lane to its next owner, e.g. a mesh port living
    /// on the worker thread).
    pub fn writer(self: &Arc<Self>, lane: usize) -> TraceWriter {
        TraceWriter::new(Arc::clone(self), lane as u16)
    }

    pub(crate) fn push(
        &self,
        lane: u16,
        name: u16,
        kind: RecordKind,
        start_ns: u64,
        dur_ns: u64,
        aux: u64,
    ) {
        if let Some(l) = self.lanes.get(lane as usize) {
            l.write(name, kind, start_ns, dur_ns, aux);
        }
    }

    /// Total records lost to ring overwrite across all lanes.
    pub fn dropped_records(&self) -> u64 {
        self.lanes.iter().map(Lane::dropped).sum()
    }

    /// Snapshot every retained record. Safe to call while writers are
    /// active: slots caught mid-write are skipped and counted in
    /// [`Dump::torn_reads`] instead of surfacing garbage.
    pub fn drain(&self) -> Dump {
        let mut records = Vec::new();
        let mut torn = 0u64;
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            let cap = lane.capacity() as u64;
            let head = lane.head.load(Ordering::Acquire);
            let start = head.saturating_sub(cap);
            for i in start..head {
                let slot = (i % cap) as usize;
                match lane.read_slot(slot) {
                    Some((meta, start_ns, dur_ns, aux)) => {
                        let (name, kind, seq) = unpack_meta(meta);
                        // The writer may have lapped us between loading
                        // `head` and reading the slot; the embedded seq
                        // exposes that, so stale reads are dropped rather
                        // than misordered.
                        if seq != i as u32 {
                            torn += 1;
                            continue;
                        }
                        records.push(Record {
                            lane: lane_idx as u16,
                            name,
                            kind,
                            seq,
                            start_ns,
                            dur_ns,
                            aux,
                        });
                    }
                    None => torn += 1,
                }
            }
        }
        Dump {
            records,
            torn_reads: torn,
            dropped: self.dropped_records(),
        }
    }
}

/// A drained snapshot of the recorder, ready for export.
#[derive(Clone, Debug)]
pub struct Dump {
    /// Retained records, ordered by lane then per-lane sequence.
    pub records: Vec<Record>,
    /// Slots skipped because a writer was mid-store during the drain.
    pub torn_reads: u64,
    /// Records lost to ring overwrite before the drain.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn meta_roundtrip() {
        for (name, kind, seq) in [
            (0u16, RecordKind::Span, 0u32),
            (17, RecordKind::Instant, u32::MAX),
            (u16::MAX, RecordKind::Span, 123_456_789),
        ] {
            assert_eq!(unpack_meta(pack_meta(name, kind, seq)), (name, kind, seq));
        }
    }

    #[test]
    fn overwrite_keeps_newest_and_counts_drops() {
        let t = Arc::new(Tracer::new(1, 4));
        let w = t.writer(0);
        for i in 0..10u64 {
            w.event(names::FLUSH, i);
        }
        let dump = t.drain();
        assert_eq!(dump.records.len(), 4, "ring retains exactly its capacity");
        assert_eq!(dump.dropped, 6, "drop counter == writes - retained");
        assert_eq!(dump.torn_reads, 0);
        let seqs: Vec<u32> = dump.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest records were overwritten");
        let auxes: Vec<u64> = dump.records.iter().map(|r| r.aux).collect();
        assert_eq!(auxes, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_stays_off() {
        let t = Arc::new(Tracer::disabled());
        let w = t.writer(0);
        {
            let _g = w.span(names::FLUSH);
            w.event(names::REPAIR, 1);
        }
        t.set_enabled(true); // must be a no-op: there is no storage
        assert!(!t.is_enabled());
        {
            let _g = w.span(names::FLUSH);
        }
        let dump = t.drain();
        assert!(dump.records.is_empty());
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn lanes_are_independent() {
        let t = Arc::new(Tracer::new(3, 8));
        for lane in 0..3usize {
            let w = t.writer(lane);
            for i in 0..(lane as u64 + 1) {
                w.event(names::UPKEEP, i);
            }
        }
        let dump = t.drain();
        for lane in 0..3u16 {
            let n = dump.records.iter().filter(|r| r.lane == lane).count();
            assert_eq!(n, lane as usize + 1);
        }
    }
}
