//! The vertex-program abstraction and its per-step context.

use rslpa_graph::{CsrGraph, VertexId};

/// Global aggregates combined across all vertices within one superstep and
/// visible to every vertex in the *next* superstep (Pregel aggregator
/// semantics). A fixed sum/min/max/count palette covers everything the
/// reproduction needs (e.g. τ2 = global min of per-vertex max similarity).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregates {
    /// Sum of contributed values.
    pub sum: f64,
    /// Minimum contributed value (`+inf` if none).
    pub min: f64,
    /// Maximum contributed value (`-inf` if none).
    pub max: f64,
    /// Number of contributions.
    pub count: u64,
}

impl Default for Aggregates {
    fn default() -> Self {
        Self {
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

impl Aggregates {
    /// Fold one contribution in.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Merge two partial aggregates (worker-local then global).
    #[inline]
    pub fn merge(&mut self, other: &Aggregates) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// Per-vertex execution context handed to [`VertexProgram::init`] and
/// [`VertexProgram::step`].
pub struct Ctx<'a, M> {
    pub(crate) vertex: VertexId,
    pub(crate) superstep: usize,
    pub(crate) graph: &'a CsrGraph,
    pub(crate) outbox: &'a mut Vec<(VertexId, M)>,
    pub(crate) aggregates_prev: &'a Aggregates,
    pub(crate) aggregates_next: &'a mut Aggregates,
    pub(crate) keep_active: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The vertex being computed.
    #[inline]
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Current superstep (0 = the `init` round).
    #[inline]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Topology neighbors of the current vertex.
    #[inline]
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.graph.neighbors(self.vertex)
    }

    /// Neighbors of an arbitrary vertex (programs occasionally need remote
    /// topology; in a real system this is a co-partitioned lookup).
    #[inline]
    pub fn neighbors_of(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.neighbors(v)
    }

    /// Full topology snapshot.
    #[inline]
    pub fn graph(&self) -> &'a CsrGraph {
        self.graph
    }

    /// Send `msg` to vertex `to`, delivered next superstep.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Aggregates contributed during the *previous* superstep.
    #[inline]
    pub fn aggregates(&self) -> &Aggregates {
        self.aggregates_prev
    }

    /// Contribute to the aggregates visible next superstep.
    #[inline]
    pub fn aggregate(&mut self, value: f64) {
        self.aggregates_next.add(value);
    }

    /// Request to be scheduled next superstep even without incoming
    /// messages (default is message-driven activation).
    #[inline]
    pub fn remain_active(&mut self) {
        *self.keep_active = true;
    }
}

/// A Pregel-style vertex program.
///
/// Execution model:
/// 1. Superstep 0 calls [`init`](Self::init) on every vertex to create its
///    state (and possibly send messages).
/// 2. Superstep `s ≥ 1` calls [`step`](Self::step) on every vertex that
///    received messages or called [`Ctx::remain_active`] in `s - 1`.
/// 3. The engine stops when no messages are in flight and no vertex is
///    active, or after `max_supersteps`.
///
/// Programs must be deterministic functions of their inputs (use
/// [`rslpa_graph::rng::PickKey`] for randomness); the engine guarantees a
/// canonical inbox order (ascending sender id, then send order), making
/// sequential and parallel execution bit-identical.
pub trait VertexProgram: Sync {
    /// Message payload.
    type Msg: Clone + Send;
    /// Per-vertex persistent state.
    type State: Send;

    /// Create vertex state at superstep 0.
    fn init(&self, ctx: &mut Ctx<'_, Self::Msg>) -> Self::State;

    /// Process the inbox at superstep ≥ 1. `inbox` holds `(sender, msg)`
    /// pairs in canonical order.
    fn step(
        &self,
        ctx: &mut Ctx<'_, Self::Msg>,
        state: &mut Self::State,
        inbox: &[(VertexId, Self::Msg)],
    );

    /// Serialized size of one message, for byte accounting. The default
    /// charges the in-memory payload size; variable-size payloads (label
    /// sets) should override.
    fn msg_bytes(&self, _msg: &Self::Msg) -> u64 {
        std::mem::size_of::<Self::Msg>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_fold_and_merge() {
        let mut a = Aggregates::default();
        a.add(2.0);
        a.add(-1.0);
        let mut b = Aggregates::default();
        b.add(10.0);
        a.merge(&b);
        assert_eq!(a.sum, 11.0);
        assert_eq!(a.min, -1.0);
        assert_eq!(a.max, 10.0);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn default_aggregates_are_identity_for_merge() {
        let mut a = Aggregates::default();
        let mut b = Aggregates::default();
        b.add(5.0);
        a.merge(&b);
        assert_eq!(a.min, 5.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.count, 1);
    }
}
