//! Community-size information entropy — the objective of the paper's τ1
//! selection (Eq. 1):
//!
//! ```text
//! entropy = − Σ_i (|C_i| / |V|) · log(|C_i| / |V|)
//! ```
//!
//! Maximized by covers that are neither "many micro communities" nor "a few
//! macro communities" (§III-B, *maximizing the information* principle).

use rslpa_graph::Cover;

/// Entropy of community sizes relative to the vertex count `n`
/// (natural log, as sizes/|V| need not sum to 1 for overlapping covers).
pub fn size_entropy(sizes: &[usize], n: usize) -> f64 {
    assert!(n > 0, "need a non-empty vertex set");
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// [`size_entropy`] of a cover.
pub fn cover_entropy(cover: &Cover, n: usize) -> f64 {
    size_entropy(&cover.sizes(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_giant_community_has_zero_entropy() {
        assert_eq!(size_entropy(&[100], 100), 0.0);
    }

    #[test]
    fn balanced_split_beats_skewed_split() {
        let balanced = size_entropy(&[50, 50], 100);
        let skewed = size_entropy(&[95, 5], 100);
        assert!(balanced > skewed, "balanced {balanced} vs skewed {skewed}");
    }

    #[test]
    fn micro_communities_also_score_low() {
        // The paper's motivation: both extremes are uninformative. 100
        // singletons: each term −(1/100)·ln(1/100) ⇒ total ln(100) ≈ 4.6 —
        // wait, that's actually high in this formula; the *real* guard
        // against micro communities in post-processing is that singleton
        // components are not counted as communities (size ≥ 2 required).
        // Here we check the mid-scale optimum among valid decompositions.
        let few_macro = size_entropy(&[100], 100);
        let mid = size_entropy(&[25, 25, 25, 25], 100);
        assert!(mid > few_macro);
    }

    #[test]
    fn empty_and_zero_sizes_ignored() {
        assert_eq!(size_entropy(&[], 10), 0.0);
        assert_eq!(size_entropy(&[0, 0], 10), 0.0);
    }

    #[test]
    fn overlapping_sizes_allowed_to_exceed_n() {
        // Σ|C_i| may exceed |V| with overlaps; formula still well-defined.
        let e = size_entropy(&[60, 60], 100);
        assert!(e > 0.0);
    }

    #[test]
    fn cover_entropy_matches_manual() {
        let c = Cover::new(vec![vec![0, 1], vec![2, 3, 4]]);
        let manual = size_entropy(&[2, 3], 5);
        assert!((cover_entropy(&c, 5) - manual).abs() < 1e-12);
    }
}
