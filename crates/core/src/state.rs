//! The label-propagation state with full provenance.
//!
//! For every vertex `v` and iteration `t ∈ 1..=T` the state stores the
//! appended label `l_v^t`, its provenance `(src_v^t, pos_v^t)`, and a
//! repick epoch (how many times this slot has been re-drawn — the input to
//! the counter-based RNG). The reverse index `R_v^t` — *who picked my
//! label at slot `t`, and at which of their iterations* — is the paper's
//! receiver-record structure (§IV-B), stored as one flat list per vertex
//! (`≈ T` entries on average, one per outgoing pick).
//!
//! Layout is struct-of-arrays over a flattened `[n × (T+1)]` (labels) /
//! `[n × T]` (picks) index space: the propagation and cascade inner loops
//! touch one row at a time, and flat `Vec<u32>`s keep that row contiguous.
//! Receiver records live in one [`SlabRows`] arena with a per-vertex span
//! (see `rslpa_graph::slab`) instead of `n` separate `Vec`s — same
//! `&[Record]` row surface, no per-vertex heap allocation, and record
//! mutation mirrors `Vec` push/swap-remove exactly so cascade iteration
//! order (and with it every downstream pick) is unchanged.

use rslpa_graph::{Label, MemAccounted, MemFootprint, SlabRows, VertexId};

/// Sentinel `src` for slots picked while the vertex had no neighbors.
pub const NO_SOURCE: VertexId = VertexId::MAX;

/// Sorted `(label, count)` histogram of one label sequence — the single
/// definition every consumer (state queries, post-processing caches) must
/// share, or cached histograms drift from freshly-built ones.
pub fn histogram_of(labels: &[Label]) -> Vec<(Label, u32)> {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(Label, u32)> = Vec::new();
    for l in sorted {
        match out.last_mut() {
            Some((prev, c)) if *prev == l => *c += 1,
            _ => out.push((l, 1)),
        }
    }
    out
}

/// One receiver record: `receiver` picked this vertex's label at slot
/// `slot`, storing it at the receiver's iteration `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// Slot (iteration index into this vertex's label sequence) picked.
    pub slot: u32,
    /// The picking vertex.
    pub receiver: VertexId,
    /// The iteration at which the receiver stored the label (`k > slot`).
    pub k: u32,
}

/// Full provenance state after `T` iterations (and any number of
/// incremental repairs).
#[derive(Clone, Debug)]
pub struct LabelState {
    n: usize,
    t_max: usize,
    seed: u64,
    /// `labels[v * (T+1) + t]`, `t ∈ 0..=T`.
    labels: Vec<Label>,
    /// `src[v * T + (t-1)]`, `t ∈ 1..=T`.
    src: Vec<VertexId>,
    /// `pos[v * T + (t-1)]`.
    pos: Vec<u32>,
    /// Repick epoch per pick slot, same indexing as `src`.
    epoch: Vec<u32>,
    /// Receiver records, one arena-backed span per vertex.
    records: SlabRows<Record>,
}

/// Fill value for reserved-but-unwritten record arena space (never read).
const RECORD_FILL: Record = Record {
    slot: 0,
    receiver: 0,
    k: 0,
};

impl LabelState {
    /// Fresh state before propagation: `l_v^0 = v`, all picks unset.
    pub fn new(n: usize, t_max: usize, seed: u64) -> Self {
        let mut labels = vec![0 as Label; n * (t_max + 1)];
        for v in 0..n {
            labels[v * (t_max + 1)] = v as Label;
        }
        Self {
            n,
            t_max,
            seed,
            labels,
            src: vec![NO_SOURCE; n * t_max],
            pos: vec![0; n * t_max],
            epoch: vec![0; n * t_max],
            records: SlabRows::with_rows(n, RECORD_FILL),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Iteration count `T`.
    #[inline]
    pub fn iterations(&self) -> usize {
        self.t_max
    }

    /// Run seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn lidx(&self, v: VertexId, t: u32) -> usize {
        debug_assert!(t as usize <= self.t_max);
        v as usize * (self.t_max + 1) + t as usize
    }

    #[inline]
    fn pidx(&self, v: VertexId, t: u32) -> usize {
        debug_assert!((1..=self.t_max as u32).contains(&t));
        v as usize * self.t_max + (t as usize - 1)
    }

    /// Label of `v` at iteration `t` (`t = 0` is the initial label).
    #[inline]
    pub fn label(&self, v: VertexId, t: u32) -> Label {
        self.labels[self.lidx(v, t)]
    }

    /// Set label of `v` at iteration `t ≥ 1`.
    #[inline]
    pub fn set_label(&mut self, v: VertexId, t: u32, l: Label) {
        let i = self.lidx(v, t);
        self.labels[i] = l;
    }

    /// The full label sequence of `v` (`T + 1` entries).
    #[inline]
    pub fn label_sequence(&self, v: VertexId) -> &[Label] {
        let base = v as usize * (self.t_max + 1);
        &self.labels[base..base + self.t_max + 1]
    }

    /// Provenance of the pick at `(v, t)`: `(src, pos)`.
    #[inline]
    pub fn pick(&self, v: VertexId, t: u32) -> (VertexId, u32) {
        let i = self.pidx(v, t);
        (self.src[i], self.pos[i])
    }

    /// Record a pick (does not touch records — see [`Self::add_record`]).
    #[inline]
    pub fn set_pick(&mut self, v: VertexId, t: u32, src: VertexId, pos: u32) {
        let i = self.pidx(v, t);
        self.src[i] = src;
        self.pos[i] = pos;
    }

    /// Current repick epoch of `(v, t)`.
    #[inline]
    pub fn epoch(&self, v: VertexId, t: u32) -> u32 {
        self.epoch[self.pidx(v, t)]
    }

    /// Bump and return the new epoch of `(v, t)` (fresh randomness for a
    /// repick or a Category-3 coin).
    #[inline]
    pub fn bump_epoch(&mut self, v: VertexId, t: u32) -> u32 {
        let i = self.pidx(v, t);
        self.epoch[i] += 1;
        self.epoch[i]
    }

    /// Register that `receiver` picked `(owner, slot)` at iteration `k`.
    #[inline]
    pub fn add_record(&mut self, owner: VertexId, slot: u32, receiver: VertexId, k: u32) {
        debug_assert!(slot < k, "receivers pick strictly earlier slots");
        self.records
            .push(owner as usize, Record { slot, receiver, k });
    }

    /// Remove the record `(owner, slot) -> (receiver, k)`; panics if absent
    /// (that would mean the reverse index is corrupt).
    pub fn remove_record(&mut self, owner: VertexId, slot: u32, receiver: VertexId, k: u32) {
        let idx = self
            .records
            .row(owner as usize)
            .iter()
            .position(|r| r.slot == slot && r.receiver == receiver && r.k == k)
            .expect("record to remove must exist");
        self.records.swap_remove(owner as usize, idx);
    }

    /// All records of `owner` (unordered).
    #[inline]
    pub fn records(&self, owner: VertexId) -> &[Record] {
        self.records.row(owner as usize)
    }

    /// Receivers of `(owner, slot)`, i.e. `R_owner^slot`.
    pub fn receivers_of(
        &self,
        owner: VertexId,
        slot: u32,
    ) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        self.records
            .row(owner as usize)
            .iter()
            .filter(move |r| r.slot == slot)
            .map(|r| (r.receiver, r.k))
    }

    /// Total number of records (should equal the number of non-isolated
    /// picks, `≤ n·T`).
    pub fn total_records(&self) -> usize {
        self.records.live_entries()
    }

    /// Label frequency histogram of `v` as a sorted `(label, count)` list —
    /// the input to post-processing similarity.
    pub fn histogram(&self, v: VertexId) -> Vec<(Label, u32)> {
        histogram_of(self.label_sequence(v))
    }

    /// Replace a vertex's whole pick row with "isolated" state (used when a
    /// vertex loses all neighbors); caller is responsible for record
    /// cleanup and cascade scheduling.
    pub fn clear_picks(&mut self, v: VertexId) {
        for t in 1..=self.t_max as u32 {
            let i = self.pidx(v, t);
            self.src[i] = NO_SOURCE;
            self.pos[i] = 0;
        }
    }

    /// Approximate resident memory of the state in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.mem_footprint().capacity_bytes
    }

    /// Grow the state to `n_new ≥ n` vertices (vertex insertion support);
    /// new vertices start isolated with `l^t = id` for all `t`.
    pub fn grow(&mut self, n_new: usize) {
        assert!(n_new >= self.n, "cannot shrink");
        let t1 = self.t_max + 1;
        let old_n = self.n;
        self.labels.resize(n_new * t1, 0);
        for v in old_n..n_new {
            for t in 0..t1 {
                self.labels[v * t1 + t] = v as Label;
            }
        }
        self.src.resize(n_new * self.t_max, NO_SOURCE);
        self.pos.resize(n_new * self.t_max, 0);
        self.epoch.resize(n_new * self.t_max, 0);
        self.records.ensure_rows(n_new);
        self.n = n_new;
    }
}

impl MemAccounted for LabelState {
    fn mem_footprint(&self) -> MemFootprint {
        let flat_live =
            (self.labels.len() + self.src.len() + self.pos.len() + self.epoch.len()) * 4;
        let flat_cap = (self.labels.capacity()
            + self.src.capacity()
            + self.pos.capacity()
            + self.epoch.capacity())
            * 4;
        MemFootprint {
            live_bytes: flat_live,
            capacity_bytes: flat_cap,
        }
        .plus(self.records.mem_footprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_labels_are_vertex_ids() {
        let s = LabelState::new(4, 3, 1);
        for v in 0..4u32 {
            assert_eq!(s.label(v, 0), v);
            assert_eq!(s.label_sequence(v).len(), 4);
        }
    }

    #[test]
    fn pick_round_trip() {
        let mut s = LabelState::new(3, 5, 1);
        s.set_pick(1, 3, 2, 1);
        assert_eq!(s.pick(1, 3), (2, 1));
        assert_eq!(s.pick(1, 1), (NO_SOURCE, 0));
    }

    #[test]
    fn epochs_bump() {
        let mut s = LabelState::new(2, 2, 1);
        assert_eq!(s.epoch(0, 1), 0);
        assert_eq!(s.bump_epoch(0, 1), 1);
        assert_eq!(s.bump_epoch(0, 1), 2);
        assert_eq!(s.epoch(1, 1), 0, "other slots unaffected");
    }

    #[test]
    fn records_add_remove_query() {
        let mut s = LabelState::new(4, 4, 1);
        s.add_record(2, 1, 3, 2);
        s.add_record(2, 1, 0, 4);
        s.add_record(2, 3, 3, 4);
        let r: Vec<_> = s.receivers_of(2, 1).collect();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&(3, 2)) && r.contains(&(0, 4)));
        assert_eq!(s.total_records(), 3);
        s.remove_record(2, 1, 3, 2);
        assert_eq!(s.receivers_of(2, 1).count(), 1);
        assert_eq!(s.total_records(), 2);
    }

    #[test]
    #[should_panic(expected = "must exist")]
    fn removing_missing_record_panics() {
        let mut s = LabelState::new(2, 2, 1);
        s.remove_record(0, 1, 1, 2);
    }

    #[test]
    fn histogram_counts() {
        let mut s = LabelState::new(1, 4, 1);
        // Sequence: [0, 7, 7, 0, 9]
        s.set_label(0, 1, 7);
        s.set_label(0, 2, 7);
        s.set_label(0, 3, 0);
        s.set_label(0, 4, 9);
        assert_eq!(s.histogram(0), vec![(0, 2), (7, 2), (9, 1)]);
    }

    #[test]
    fn grow_adds_isolated_vertices() {
        let mut s = LabelState::new(2, 3, 1);
        s.set_label(1, 2, 9);
        s.grow(4);
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.label(1, 2), 9, "existing data preserved");
        for t in 0..=3 {
            assert_eq!(s.label(3, t), 3);
        }
        assert_eq!(s.pick(3, 1), (NO_SOURCE, 0));
    }

    #[test]
    fn memory_accounting_positive() {
        let s = LabelState::new(10, 5, 1);
        assert!(s.memory_bytes() > 10 * 6 * 4);
    }
}
