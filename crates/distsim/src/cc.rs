//! Distributed connected components via hash-to-min.
//!
//! Post-processing (paper §III-B) extracts communities as connected
//! components of the similarity-filtered graph, citing Chitnis et al.
//! ("Finding connected components in map-reduce in logarithmic rounds",
//! ICDE 2013 — the paper's \[18\]) for an `O(log d)`-round algorithm. This is
//! that algorithm:
//!
//! Each vertex `v` maintains a cluster `C_v` (initially `{v} ∪ N(v)`).
//! Per round, `v` sends `min(C_v)` to every member of `C_v`, and sends
//! `C_v` itself to `min(C_v)`. The new `C_v` is the union of everything
//! received. At convergence every non-minimum vertex holds exactly
//! `{component minimum}`, and each component minimum holds its whole
//! component — so the canonical min-id labeling matches
//! [`rslpa_graph::connected_components`] exactly, which the tests exploit.
//!
//! The paper's post-processing trick — "adding filtering on edge weights,
//! so that we do not need to explicitly generate the new \[filtered\]
//! graph" — is honored with a per-edge `keep` predicate.

use rslpa_graph::{CsrGraph, Partitioner, VertexId};

use crate::engine::{BspEngine, Executor};
use crate::program::{Ctx, VertexProgram};
use crate::stats::RunStats;

/// Hash-to-min vertex program over the subgraph of edges accepted by `F`.
pub struct HashToMin<F> {
    /// Edge filter: `keep(u, v)` decides if the edge participates.
    /// Symmetric by contract (`keep(u, v) == keep(v, u)`).
    pub keep: F,
}

/// State: the cluster `C_v`, sorted ascending (so `C_v\[0\]` is its min).
pub type Cluster = Vec<VertexId>;

impl<F: Fn(VertexId, VertexId) -> bool + Sync> HashToMin<F> {
    fn filtered_cluster(&self, ctx: &Ctx<'_, Vec<VertexId>>) -> Cluster {
        let v = ctx.vertex();
        let mut c: Cluster = ctx
            .neighbors()
            .iter()
            .copied()
            .filter(|&u| (self.keep)(v, u))
            .collect();
        // Neighbors are sorted; insert v at its position to keep order.
        let pos = c.partition_point(|&u| u < v);
        c.insert(pos, v);
        c
    }

    fn broadcast(ctx: &mut Ctx<'_, Vec<VertexId>>, cluster: &Cluster) {
        let me = ctx.vertex();
        let min = cluster[0];
        if cluster.len() == 1 {
            return; // isolated in the filtered graph: nothing to exchange
        }
        // Send min(C) to every other member, and C to the min member.
        for &u in &cluster[1..] {
            if u != me {
                ctx.send(u, vec![min]);
            }
        }
        if min != me {
            ctx.send(min, cluster.clone());
        }
    }
}

impl<F: Fn(VertexId, VertexId) -> bool + Sync> VertexProgram for HashToMin<F> {
    type Msg = Vec<VertexId>;
    type State = Cluster;

    fn init(&self, ctx: &mut Ctx<'_, Self::Msg>) -> Cluster {
        let c = self.filtered_cluster(ctx);
        Self::broadcast(ctx, &c);
        c
    }

    fn step(
        &self,
        ctx: &mut Ctx<'_, Self::Msg>,
        state: &mut Cluster,
        inbox: &[(VertexId, Self::Msg)],
    ) {
        // New cluster = union of all received sets (k-way sorted merge via
        // collect + sort + dedup; received sets are small in practice).
        let mut next: Cluster = inbox.iter().flat_map(|(_, c)| c.iter().copied()).collect();
        next.sort_unstable();
        next.dedup();
        if next.is_empty() || next == *state {
            return; // converged locally; stay silent
        }
        *state = next;
        Self::broadcast(ctx, state);
    }

    fn msg_bytes(&self, msg: &Self::Msg) -> u64 {
        (msg.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

/// Run distributed connected components over the filtered graph; returns
/// `(labels, stats)` where `labels[v]` is the minimum vertex id in `v`'s
/// filtered component.
pub fn distributed_components<F>(
    graph: &CsrGraph,
    keep: F,
    partitioner: &dyn Partitioner,
    executor: Executor,
    max_rounds: usize,
) -> (Vec<VertexId>, RunStats)
where
    F: Fn(VertexId, VertexId) -> bool + Sync,
{
    let mut engine = BspEngine::new(graph, HashToMin { keep }, partitioner, executor);
    engine.run(max_rounds);
    let stats = engine.stats().clone();
    let n = graph.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    engine.for_each_state(|v, cluster| {
        // Non-min vertices converge to {min}; the min vertex holds its whole
        // component, whose first element is itself.
        labels[v as usize] = cluster.first().copied().unwrap_or(v);
    });
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rslpa_graph::{connected_components, AdjacencyGraph, HashPartitioner};

    fn csr(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_adjacency(&AdjacencyGraph::from_edges(n, edges.iter().copied()))
    }

    #[test]
    fn matches_union_find_on_small_graph() {
        let g = csr(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (labels, _) = distributed_components(
            &g,
            |_, _| true,
            &HashPartitioner::new(3),
            Executor::Sequential,
            100,
        );
        let oracle = connected_components(7, g.edges());
        assert_eq!(labels, oracle);
    }

    #[test]
    fn edge_filter_splits_components() {
        // Path 0-1-2-3; filtering out (1,2) yields {0,1} and {2,3}.
        let g = csr(4, &[(0, 1), (1, 2), (2, 3)]);
        let keep = |u: u32, v: u32| !(u.min(v) == 1 && u.max(v) == 2);
        let (labels, _) = distributed_components(
            &g,
            keep,
            &HashPartitioner::new(2),
            Executor::Sequential,
            100,
        );
        assert_eq!(labels, vec![0, 0, 2, 2]);
    }

    #[test]
    fn long_path_converges_in_logarithmic_rounds() {
        let n = 256;
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = csr(n, &edges);
        let (labels, stats) = distributed_components(
            &g,
            |_, _| true,
            &HashPartitioner::new(4),
            Executor::Sequential,
            1000,
        );
        assert!(labels.iter().all(|&l| l == 0));
        // Diameter 255; naive min-propagation needs ~255 rounds. Hash-to-min
        // must be far below (O(log d) ≈ 8–30 with constants).
        assert!(
            stats.rounds() <= 40,
            "expected logarithmic rounds, got {}",
            stats.rounds()
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 64;
        let mut edges = Vec::new();
        // A few random-ish components via a fixed pattern.
        for i in 0..n as u32 {
            if i % 7 != 0 {
                edges.push((i - 1, i));
            }
        }
        let g = csr(n, &edges);
        let p = HashPartitioner::new(4);
        let (seq, _) = distributed_components(&g, |_, _| true, &p, Executor::Sequential, 100);
        let (par, _) = distributed_components(&g, |_, _| true, &p, Executor::Parallel, 100);
        assert_eq!(seq, par);
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = csr(3, &[]);
        let (labels, stats) = distributed_components(
            &g,
            |_, _| true,
            &HashPartitioner::new(2),
            Executor::Sequential,
            10,
        );
        assert_eq!(labels, vec![0, 1, 2]);
        assert!(stats.rounds() <= 2, "no traffic means immediate quiescence");
    }

    #[test]
    fn message_bytes_scale_with_cluster_size() {
        let prog = HashToMin { keep: |_, _| true };
        assert_eq!(prog.msg_bytes(&vec![1, 2, 3]), 12);
    }
}
