//! Convergence study (the pivot experiment behind Fig. 7a): how many
//! iterations does rSLPA need before detection quality stabilizes, and how
//! does that compare to SLPA at its default T = 100?
//!
//! ```sh
//! cargo run --release --example convergence_study
//! ```

use rslpa::prelude::*;

fn main() {
    let n = 1_000;
    let params = LfrParams {
        seed: 5,
        ..LfrParams::scaled(n)
    };
    let instance = params.generate().expect("LFR generation");
    let truth = &instance.ground_truth;
    println!(
        "LFR benchmark: {n} vertices, {} edges, mixing {:.3}, {} communities",
        instance.graph.num_edges(),
        instance.achieved_mixing,
        truth.len()
    );

    println!("\n rSLPA NMI vs iterations (avg of 3 seeds):");
    println!("  T    NMI");
    for t_max in [25usize, 50, 100, 150, 200, 300] {
        let mut nmi = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let state = run_propagation(&instance.graph, t_max, seed);
            let cover = postprocess(&instance.graph, &state, None).cover;
            nmi += overlapping_nmi(&cover, truth, n);
        }
        println!("  {t_max:<4} {:.3}", nmi / runs as f64);
    }

    let slpa = run_slpa(
        &instance.graph,
        &SlpaConfig {
            iterations: 100,
            threshold: 0.2,
            seed: 1,
        },
    );
    let slpa_nmi = overlapping_nmi(&slpa.cover, truth, n);
    println!("\n SLPA reference (T = 100, tau = 0.2): NMI {slpa_nmi:.3}");
    println!("\n(The paper's Fig. 7a: rSLPA stabilizes for T >= 200; use `repro fig7a` for the full sweep.)");
}
