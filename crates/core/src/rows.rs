//! Packed per-vertex histogram rows for the counter stores.
//!
//! A label histogram is a short sorted run of `(label, count)` pairs with
//! `count ≤ m = T+1`. The legacy stores kept one `Vec<(Label, u32)>` per
//! vertex — 8 bytes per entry plus a 24-byte header plus allocator slack,
//! scattered across the heap. [`HistRows`] packs every row into **two
//! parallel arenas** (`labels: u32`, `counts: u16` — 6 bytes per entry,
//! counts provably fit `u16` because `m ≤ 65535` is asserted) managed
//! with the same size-class page / free-list / tombstone-compaction rules
//! as [`rslpa_graph::slab`]. Counter upkeep — the per-flush neighbor
//! sweep in `EdgeCounters` / `CounterPartition` — then reads
//! cache-contiguous rows instead of chasing one pointer per vertex.
//!
//! Rows are addressed by a `u32` slot handle: dense stores use
//! `slot == vertex id` (slots are allocated in vertex order and never
//! released), sharded partitions map sparse vertex ids to slots and
//! release them on migration. Every mutating op (`shift`, `fold_diff`,
//! `set_from`) reproduces the exact semantics of the legacy `Vec`
//! helpers, so counter maintenance stays bit-identical.

use rslpa_graph::slab::{class_cap, class_for};
use rslpa_graph::{Label, MemAccounted, MemFootprint};

/// Arena length below which compaction never triggers.
const COMPACT_FLOOR: usize = 4096;

/// One row's page over both arenas: `labels[head..head+len]` /
/// `counts[head..head+len]`, inside a page of `class_cap(class)` entries.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    head: u32,
    len: u16,
    class: u8,
    /// Slot released (page recycled, row unusable until re-allocated).
    dead: bool,
}

/// A borrowed histogram row: sorted labels with parallel counts.
#[derive(Clone, Copy, Debug)]
pub struct HistRow<'a> {
    /// Sorted distinct labels.
    pub labels: &'a [Label],
    /// Count per label, parallel to `labels`.
    pub counts: &'a [u16],
}

impl HistRow<'_> {
    /// Number of distinct labels.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the row has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Count of `l` (0 if absent).
    #[inline]
    pub fn count_of(&self, l: Label) -> u32 {
        match self.labels.binary_search(&l) {
            Ok(i) => u32::from(self.counts[i]),
            Err(_) => 0,
        }
    }

    /// Materialize the legacy `(label, count)` representation (shipping
    /// rows across shard mailboxes, diagnostics).
    pub fn to_vec(&self) -> Vec<(Label, u32)> {
        self.labels
            .iter()
            .zip(self.counts)
            .map(|(&l, &c)| (l, u32::from(c)))
            .collect()
    }

    /// Exact common-label numerator `Σ_l f_a(l)·f_b(l)` of two rows —
    /// the same merge-scan as `postprocess::common_labels`, over packed
    /// rows.
    pub fn common(&self, other: &HistRow<'_>) -> u64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0u64;
        while i < self.labels.len() && j < other.labels.len() {
            match self.labels[i].cmp(&other.labels[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += u64::from(self.counts[i]) * u64::from(other.counts[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// Packed histogram rows (see module docs).
#[derive(Clone, Debug)]
pub struct HistRows {
    /// Draws per sequence (`T + 1`) — the default count of a fresh row.
    m: u32,
    labels: Vec<Label>,
    counts: Vec<u16>,
    spans: Vec<Span>,
    /// Recycled page heads per size class (shared by both arenas — they
    /// move in lockstep).
    free_pages: Vec<Vec<u32>>,
    /// Released slot handles, reused before new slots are appended.
    free_slots: Vec<u32>,
    /// Σ span.len over live rows.
    live: usize,
    /// Σ class_cap(span.class) over live rows.
    reserved: usize,
}

impl HistRows {
    /// An empty store for sequences of `m` draws.
    pub fn new(m: usize) -> Self {
        assert!(m <= u16::MAX as usize, "draw count must fit u16 counts");
        Self {
            m: m as u32,
            labels: Vec::new(),
            counts: Vec::new(),
            spans: Vec::new(),
            free_pages: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            reserved: 0,
        }
    }

    /// Draws per sequence.
    #[inline]
    pub fn draws(&self) -> usize {
        self.m as usize
    }

    /// Number of slots ever allocated (dense stores: the vertex count).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.spans.len()
    }

    /// Borrow row `slot`.
    #[inline]
    pub fn row(&self, slot: u32) -> HistRow<'_> {
        let s = self.spans[slot as usize];
        debug_assert!(!s.dead, "read of a released row");
        let (a, b) = (s.head as usize, (s.head + u32::from(s.len)) as usize);
        HistRow {
            labels: &self.labels[a..b],
            counts: &self.counts[a..b],
        }
    }

    /// Count of `l` in row `slot` (0 if absent).
    #[inline]
    pub fn count_of(&self, slot: u32, l: Label) -> u32 {
        self.row(slot).count_of(l)
    }

    /// Exact common-label numerator of two rows.
    #[inline]
    pub fn common(&self, a: u32, b: u32) -> u64 {
        self.row(a).common(&self.row(b))
    }

    fn alloc_page(&mut self, class: u8) -> u32 {
        debug_assert!(class > 0);
        if let Some(head) = self
            .free_pages
            .get_mut(class as usize)
            .and_then(|list| list.pop())
        {
            return head;
        }
        let head = self.labels.len() as u32;
        let cap = class_cap(class) as usize;
        self.labels.resize(self.labels.len() + cap, 0);
        self.counts.resize(self.counts.len() + cap, 0);
        head
    }

    fn recycle_page(&mut self, head: u32, class: u8) {
        debug_assert!(class > 0);
        if self.free_pages.len() <= class as usize {
            self.free_pages.resize(class as usize + 1, Vec::new());
        }
        self.free_pages[class as usize].push(head);
    }

    /// Allocate a slot holding `hist` (sorted `(label, count)` run).
    pub fn alloc_from(&mut self, hist: &[(Label, u32)]) -> u32 {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.spans.push(Span::default());
                (self.spans.len() - 1) as u32
            }
        };
        self.spans[slot as usize] = Span::default();
        self.write_row(slot, hist);
        slot
    }

    /// Allocate a slot with the own-label histogram a fresh untouched
    /// sequence has (`{v: m}`).
    pub fn alloc_default(&mut self, v: Label) -> u32 {
        let m = self.m;
        self.alloc_from(&[(v, m)])
    }

    /// Release `slot`: its page is recycled and the handle reused by a
    /// later alloc.
    pub fn release(&mut self, slot: u32) {
        let s = self.spans[slot as usize];
        debug_assert!(!s.dead, "double release");
        if s.class > 0 {
            self.recycle_page(s.head, s.class);
            self.reserved -= class_cap(s.class) as usize;
        }
        self.live -= usize::from(s.len);
        self.spans[slot as usize] = Span {
            dead: true,
            ..Span::default()
        };
        self.free_slots.push(slot);
        self.maybe_compact();
    }

    /// Replace row `slot` with `hist` (sorted run).
    pub fn set_from(&mut self, slot: u32, hist: &[(Label, u32)]) {
        let s = self.spans[slot as usize];
        debug_assert!(!s.dead, "write to a released row");
        if s.class > 0 {
            self.recycle_page(s.head, s.class);
            self.reserved -= class_cap(s.class) as usize;
        }
        self.live -= usize::from(s.len);
        self.spans[slot as usize] = Span::default();
        self.write_row(slot, hist);
    }

    /// Write `hist` into a fresh (empty-span) slot.
    fn write_row(&mut self, slot: u32, hist: &[(Label, u32)]) {
        debug_assert!(hist.windows(2).all(|w| w[0].0 < w[1].0), "sorted run");
        let len = hist.len() as u32;
        let class = class_for(len);
        let head = if class > 0 { self.alloc_page(class) } else { 0 };
        for (i, &(l, c)) in hist.iter().enumerate() {
            debug_assert!(c <= u32::from(u16::MAX));
            self.labels[head as usize + i] = l;
            self.counts[head as usize + i] = c as u16;
        }
        self.reserved += class_cap(class) as usize;
        self.live += hist.len();
        self.spans[slot as usize] = Span {
            head,
            len: len as u16,
            class,
            dead: false,
        };
    }

    /// Move row `slot` to a page with room for one more entry.
    fn grow_row(&mut self, slot: u32) {
        let s = self.spans[slot as usize];
        let new_class = class_for(u32::from(s.len) + 1).max(s.class + 1);
        let new_head = self.alloc_page(new_class);
        let (from, to) = (s.head as usize, new_head as usize);
        let len = usize::from(s.len);
        self.labels.copy_within(from..from + len, to);
        self.counts.copy_within(from..from + len, to);
        if s.class > 0 {
            self.recycle_page(s.head, s.class);
        }
        self.reserved += class_cap(new_class) as usize - class_cap(s.class) as usize;
        self.spans[slot as usize] = Span {
            head: new_head,
            class: new_class,
            ..s
        };
    }

    /// Insert `(l, c)` at sorted position `idx` of row `slot`.
    fn insert_at(&mut self, slot: u32, idx: usize, l: Label, c: u16) {
        let s = self.spans[slot as usize];
        if u32::from(s.len) == class_cap(s.class) {
            self.grow_row(slot);
        }
        let s = self.spans[slot as usize];
        let (head, len) = (s.head as usize, usize::from(s.len));
        self.labels
            .copy_within(head + idx..head + len, head + idx + 1);
        self.counts
            .copy_within(head + idx..head + len, head + idx + 1);
        self.labels[head + idx] = l;
        self.counts[head + idx] = c;
        self.spans[slot as usize].len += 1;
        self.live += 1;
    }

    /// Remove the entry at `idx` of row `slot` (order-preserving).
    fn remove_at(&mut self, slot: u32, idx: usize) {
        let s = self.spans[slot as usize];
        let (head, len) = (s.head as usize, usize::from(s.len));
        self.labels
            .copy_within(head + idx + 1..head + len, head + idx);
        self.counts
            .copy_within(head + idx + 1..head + len, head + idx);
        self.spans[slot as usize].len -= 1;
        self.live -= 1;
    }

    /// Move one unit of mass in row `slot` from `old` to `new` — the
    /// packed equivalent of the legacy `hist_shift`.
    pub fn shift(&mut self, slot: u32, old: Label, new: Label) {
        let row = self.row(slot);
        let i = row
            .labels
            .binary_search(&old)
            .expect("slot delta's old label must be present in the histogram");
        if row.counts[i] == 1 {
            self.remove_at(slot, i);
        } else {
            let head = self.spans[slot as usize].head as usize;
            self.counts[head + i] -= 1;
        }
        match self.row(slot).labels.binary_search(&new) {
            Ok(j) => {
                let head = self.spans[slot as usize].head as usize;
                self.counts[head + j] += 1;
            }
            Err(j) => self.insert_at(slot, j, new, 1),
        }
    }

    /// Fold a sparse signed diff into row `slot` — the packed equivalent
    /// of the legacy `fold_diff_into_hist`.
    pub fn fold_diff(&mut self, slot: u32, diff: &[(Label, i64)]) {
        for &(l, dl) in diff {
            match self.row(slot).labels.binary_search(&l) {
                Ok(i) => {
                    let head = self.spans[slot as usize].head as usize;
                    let next = i64::from(self.counts[head + i]) + dl;
                    debug_assert!(next >= 0, "histogram count went negative");
                    if next == 0 {
                        self.remove_at(slot, i);
                    } else {
                        self.counts[head + i] = next as u16;
                    }
                }
                Err(i) => {
                    debug_assert!(dl > 0, "negative diff for absent label");
                    self.insert_at(slot, i, l, dl as u16);
                }
            }
        }
    }

    /// Tombstone compaction: re-pack every live row into the smallest
    /// class that fits it; free pages are dropped.
    pub fn compact(&mut self) {
        let cap = self.live + self.live / 2;
        let mut labels = Vec::with_capacity(cap);
        let mut counts = Vec::with_capacity(cap);
        let mut reserved = 0usize;
        for s in self.spans.iter_mut() {
            if s.dead {
                continue;
            }
            let class = class_for(u32::from(s.len));
            let head = labels.len() as u32;
            let (a, b) = (s.head as usize, s.head as usize + usize::from(s.len));
            labels.extend_from_slice(&self.labels[a..b]);
            counts.extend_from_slice(&self.counts[a..b]);
            let page_end = head as usize + class_cap(class) as usize;
            labels.resize(page_end, 0);
            counts.resize(page_end, 0);
            reserved += class_cap(class) as usize;
            s.head = head;
            s.class = class;
        }
        self.labels = labels;
        self.counts = counts;
        self.reserved = reserved;
        self.free_pages.clear();
    }

    fn maybe_compact(&mut self) {
        if self.labels.len() > COMPACT_FLOOR && self.labels.len() > 2 * self.reserved {
            self.compact();
        }
    }
}

impl MemAccounted for HistRows {
    fn mem_footprint(&self) -> MemFootprint {
        let entry = 4 + 2; // u32 label + u16 count
        let span = std::mem::size_of::<Span>();
        MemFootprint {
            live_bytes: self.live * entry + self.spans.len() * span,
            capacity_bytes: self.labels.capacity() * 4
                + self.counts.capacity() * 2
                + self.spans.capacity() * span
                + (self.free_slots.capacity()
                    + self.free_pages.iter().map(Vec::capacity).sum::<usize>())
                    * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The legacy Vec-based reference ops (verbatim semantics).
    fn model_shift(hist: &mut Vec<(Label, u32)>, old: Label, new: Label) {
        let i = hist.binary_search_by_key(&old, |e| e.0).unwrap();
        if hist[i].1 == 1 {
            hist.remove(i);
        } else {
            hist[i].1 -= 1;
        }
        match hist.binary_search_by_key(&new, |e| e.0) {
            Ok(j) => hist[j].1 += 1,
            Err(j) => hist.insert(j, (new, 1)),
        }
    }

    #[test]
    fn alloc_read_round_trip() {
        let mut rows = HistRows::new(10);
        let a = rows.alloc_from(&[(1, 4), (7, 6)]);
        let b = rows.alloc_default(3);
        assert_eq!(rows.row(a).to_vec(), vec![(1, 4), (7, 6)]);
        assert_eq!(rows.row(b).to_vec(), vec![(3, 10)]);
        assert_eq!(rows.count_of(a, 7), 6);
        assert_eq!(rows.count_of(a, 2), 0);
    }

    #[test]
    fn common_matches_manual_product() {
        let mut rows = HistRows::new(6);
        let a = rows.alloc_from(&[(0, 2), (1, 2), (5, 2)]);
        let b = rows.alloc_from(&[(1, 3), (5, 1), (9, 2)]);
        assert_eq!(rows.common(a, b), 2 * 3 + 2 * 1);
    }

    #[test]
    fn shift_and_fold_mirror_legacy_helpers() {
        let mut rows = HistRows::new(8);
        let mut model = vec![(2u32, 3u32), (4, 4), (9, 1)];
        let s = rows.alloc_from(&model);
        model_shift(&mut model, 9, 4);
        rows.shift(s, 9, 4);
        assert_eq!(rows.row(s).to_vec(), model);
        rows.fold_diff(s, &[(2, -3), (7, 2), (4, 1)]);
        assert_eq!(rows.row(s).to_vec(), vec![(4, 6), (7, 2)]);
    }

    #[test]
    fn release_recycles_slot_and_page() {
        let mut rows = HistRows::new(5);
        let a = rows.alloc_from(&[(0, 1), (1, 1), (2, 1), (3, 1)]);
        rows.release(a);
        let b = rows.alloc_from(&[(8, 2)]);
        assert_eq!(b, a, "slot handle reused");
        assert_eq!(rows.row(b).to_vec(), vec![(8, 2)]);
    }

    #[test]
    fn set_from_replaces_row() {
        let mut rows = HistRows::new(5);
        let s = rows.alloc_default(2);
        rows.set_from(s, &[(1, 2), (3, 3)]);
        assert_eq!(rows.row(s).to_vec(), vec![(1, 2), (3, 3)]);
    }

    #[test]
    #[should_panic(expected = "fit u16")]
    fn oversized_draw_count_rejected() {
        HistRows::new(70_000);
    }

    proptest! {
        /// Packed rows stay equal to the Vec model under random shift /
        /// fold / set / release-realloc streams (exercises page growth,
        /// recycling, and compaction).
        #[test]
        fn packed_rows_match_vec_model(ops in proptest::collection::vec(
            (0usize..6, 0u32..12, 0u32..12), 1..300))
        {
            let m = 40usize;
            let mut rows = HistRows::new(m);
            let mut model: Vec<Option<(u32, Vec<(Label, u32)>)>> = Vec::new();
            for i in 0..6u32 {
                let slot = rows.alloc_default(i);
                model.push(Some((slot, vec![(i, m as u32)])));
            }
            for (who, a, b) in ops {
                let Some((slot, hist)) = model[who].clone() else {
                    // Re-allocate a released row.
                    let slot = rows.alloc_default(who as u32);
                    model[who] = Some((slot, vec![(who as u32, m as u32)]));
                    continue;
                };
                match a % 3 {
                    0 => {
                        // shift mass from an existing label to label b.
                        let mut hist = hist;
                        let old = hist[(a as usize) % hist.len()].0;
                        if old == b { continue; }
                        model_shift(&mut hist, old, b);
                        rows.shift(slot, old, b);
                        model[who] = Some((slot, hist));
                    }
                    1 => {
                        // whole-row replacement.
                        let fresh = vec![(b, 2u32), (b + 20, 1)];
                        rows.set_from(slot, &fresh);
                        model[who] = Some((slot, fresh));
                    }
                    _ => {
                        rows.release(slot);
                        model[who] = None;
                    }
                }
            }
            for entry in model.iter().flatten() {
                prop_assert_eq!(rows.row(entry.0).to_vec(), entry.1.clone());
            }
        }
    }
}
