//! `repro weights` — merge-on-publish vs streaming common-label counters.
//!
//! PR 3 measured the per-publish edge-weight pass as the snapshot floor:
//! `sequence_similarity` re-merges two ≤T+1-entry histograms for every
//! dirty-incident edge (~6 ms of the ~10 ms publish at n=2000/T=50 under
//! uniform churn, which dirties everything). This experiment pits that
//! baseline against the streaming [`EdgeCounters`] path on the same
//! repair stream:
//!
//! * **merge** — PR 3's dirty-region semantics, reimplemented here: cache
//!   per-vertex histograms and the previous weight list; at publish,
//!   re-merge every edge with a dirty endpoint, reuse the rest.
//! * **counters** — maintain `common_uv` incrementally from the repair's
//!   compacted slot-delta stream (`O(deg)` per net change, paid at flush
//!   time), and at publish read every weight as `common / m²`.
//!
//! Both paths see the identical detector state, and every publish asserts
//! their weight lists are bit-identical before timing is recorded. The
//! JSON lands in `BENCH_serve.json` (override with `--out`).

use std::time::Instant;

use rslpa_core::postprocess::sequence_similarity;
use rslpa_core::state::histogram_of;
use rslpa_core::{EdgeCounters, RslpaConfig, RslpaDetector};
use rslpa_gen::edits::{targeted_batch, uniform_batch, EditWorkload};
use rslpa_gen::lfr::LfrParams;
use rslpa_graph::{AdjacencyGraph, Cover, FxHashSet, Label, VertexId};

use crate::report::Table;

/// Workload knobs (mirrors the serve acceptance configuration).
#[derive(Clone, Copy, Debug)]
pub struct WeightsWorkload {
    /// Human label recorded in the JSON.
    pub mode: &'static str,
    /// Approximate vertex count of the LFR seed graph.
    pub graph_n: usize,
    /// Detector iterations `T`.
    pub iterations: usize,
    /// Edits per flush (the serve loop's micro-batch size).
    pub flush_edits: usize,
    /// Flushes between publishes (the serve loop's `snapshot_every`).
    pub flushes_per_publish: usize,
    /// Publishes measured.
    pub publishes: usize,
    /// Edit-stream bias: the paper's uniform rewiring (dirties every
    /// vertex — the adversarial case) or churn respecting the planted
    /// communities (the serving case streaming upkeep is built for).
    pub churn: EditWorkload,
    /// Workload seed.
    pub seed: u64,
}

impl WeightsWorkload {
    /// The acceptance configuration: the serve workload's n=2000/T=50
    /// uniform churn, 256-edit flushes, publish every 8 flushes.
    pub fn full() -> Self {
        Self {
            mode: "full",
            graph_n: 2_000,
            iterations: 50,
            flush_edits: 256,
            flushes_per_publish: 8,
            publishes: 12,
            churn: EditWorkload::Uniform,
            seed: 42,
        }
    }

    /// CI-scale smoke: same shape, two orders of magnitude lighter.
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            graph_n: 400,
            iterations: 25,
            flush_edits: 128,
            flushes_per_publish: 4,
            publishes: 4,
            churn: EditWorkload::Uniform,
            seed: 42,
        }
    }
}

fn churn_label(churn: EditWorkload) -> &'static str {
    match churn {
        EditWorkload::Uniform => "uniform",
        EditWorkload::Consolidating => "consolidating",
        EditWorkload::Eroding => "eroding",
        EditWorkload::Localized => "localized",
    }
}

/// PR 3's dirty-region merge pass, reimplemented as the baseline: cached
/// histograms + previous weight list, re-merge only dirty-incident edges.
struct MergeBaseline {
    m: usize,
    hists: Vec<Vec<(Label, u32)>>,
    prev: Vec<(VertexId, VertexId, f64)>,
}

impl MergeBaseline {
    fn new(det: &RslpaDetector) -> Self {
        let state = det.state();
        Self {
            m: state.iterations() + 1,
            hists: (0..state.num_vertices() as VertexId)
                .map(|v| state.histogram(v))
                .collect(),
            prev: Vec::new(),
        }
    }

    /// Refresh dirty histograms (PR 3 did this in `sync_dirty`, outside
    /// the measured weight pass — kept outside here too, in the
    /// baseline's favor).
    fn sync(&mut self, det: &RslpaDetector, dirty: &FxHashSet<VertexId>) {
        for &v in dirty {
            self.hists[v as usize] = histogram_of(det.state().label_sequence(v));
        }
    }

    /// The measured pass: merge stale edges, reuse clean ones.
    fn publish(
        &mut self,
        graph: &AdjacencyGraph,
        dirty: &FxHashSet<VertexId>,
    ) -> Vec<(VertexId, VertexId, f64)> {
        let mut out = Vec::with_capacity(graph.num_edges());
        let mut old = self.prev.iter().peekable();
        for (u, v) in graph.edges() {
            while let Some(&&(ou, ov, _)) = old.peek() {
                if (ou, ov) < (u, v) {
                    old.next();
                } else {
                    break;
                }
            }
            let mut w = f64::NAN;
            if !dirty.contains(&u) && !dirty.contains(&v) {
                if let Some(&&(ou, ov, ow)) = old.peek() {
                    if (ou, ov) == (u, v) {
                        w = ow;
                    }
                }
            }
            if w.is_nan() {
                w = sequence_similarity(&self.hists[u as usize], &self.hists[v as usize], self.m);
            }
            out.push((u, v, w));
        }
        self.prev.clone_from(&out);
        out
    }
}

/// Per-publish measurements, all in nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct WeightsBenchResult {
    /// Baseline merge-pass wall time per publish.
    pub merge_ns: Vec<u64>,
    /// Counter-read weight pass wall time per publish.
    pub counter_read_ns: Vec<u64>,
    /// Counter maintenance wall time per publish interval (summed over
    /// its flushes).
    pub counter_maint_ns: Vec<u64>,
    /// Net slot deltas folded per publish interval.
    pub net_deltas: Vec<u64>,
    /// Dirty vertices per publish interval (the merge baseline's input).
    pub dirty_vertices: Vec<u64>,
    /// Edges in the graph at each publish.
    pub edges: Vec<u64>,
}

fn mean(ns: &[u64]) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    ns.iter().sum::<u64>() as f64 / ns.len() as f64
}

/// Run the workload and return the measurements.
pub fn run_workload(w: &WeightsWorkload) -> WeightsBenchResult {
    let instance = LfrParams {
        seed: w.seed,
        ..LfrParams::scaled(w.graph_n)
    }
    .generate()
    .expect("LFR generation");
    let truth: Cover = instance.ground_truth;
    let next_batch = |graph: &AdjacencyGraph, seed: u64| match w.churn {
        EditWorkload::Uniform => uniform_batch(graph, w.flush_edits, seed),
        bias => targeted_batch(graph, &truth, bias, w.flush_edits, seed),
    };
    let mut det = RslpaDetector::new(instance.graph, RslpaConfig::quick(w.iterations, w.seed));
    let mut merge = MergeBaseline::new(&det);
    let mut counters = EdgeCounters::new(det.state());
    // Both sides pay their genesis pass before the clock starts.
    merge.publish(det.graph(), &FxHashSet::default());
    counters.refresh_weights(det.graph(), 1);

    let mut result = WeightsBenchResult::default();
    let mut round = 0u64;
    for _ in 0..w.publishes {
        let mut dirty: FxHashSet<VertexId> = FxHashSet::default();
        let mut maint_ns = 0u64;
        let mut net = 0u64;
        for _ in 0..w.flushes_per_publish {
            let batch = next_batch(det.graph(), w.seed.wrapping_add(round));
            round += 1;
            let mut deltas = Vec::new();
            det.apply_batch_streaming(&batch, &mut dirty, &mut deltas)
                .expect("generated batch validates");
            // Streaming side: per-flush counter maintenance.
            let t = Instant::now();
            for &(u, v) in batch.deletions() {
                counters.delete_edge(u, v);
            }
            net += counters.apply_slot_deltas(det.graph(), &deltas) as u64;
            maint_ns += t.elapsed().as_nanos() as u64;
        }
        // Publish: merge baseline (hist sync unmeasured, in its favor).
        merge.sync(&det, &dirty);
        let t = Instant::now();
        let w_merge = merge.publish(det.graph(), &dirty);
        let merge_ns = t.elapsed().as_nanos() as u64;
        // Publish: counter read.
        let t = Instant::now();
        let w_ctr = counters.refresh_weights(det.graph(), 1);
        let read_ns = t.elapsed().as_nanos() as u64;
        // Equality is the contract; a drift invalidates the measurement.
        assert_eq!(w_merge.len(), w_ctr.len());
        for (a, b) in w_merge.iter().zip(&w_ctr) {
            assert_eq!((a.0, a.1), (b.0, b.1), "edge order drifted");
            assert_eq!(a.2.to_bits(), b.2.to_bits(), "weight drifted at {a:?}");
        }
        result.merge_ns.push(merge_ns);
        result.counter_read_ns.push(read_ns);
        result.counter_maint_ns.push(maint_ns);
        result.net_deltas.push(net);
        result.dirty_vertices.push(dirty.len() as u64);
        result.edges.push(det.graph().num_edges() as u64);
    }
    result
}

fn json_list(ns: &[u64]) -> String {
    ns.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
}

/// Render one run as JSON key/value lines, no outer braces (shared by the
/// top-level uniform run and the nested consolidating run).
fn json_body(w: &WeightsWorkload, r: &WeightsBenchResult, indent: &str) -> String {
    let merge_mean = mean(&r.merge_ns);
    let read_mean = mean(&r.counter_read_ns);
    let maint_mean = mean(&r.counter_maint_ns);
    format!(
        "\"config\": {{\"graph_n\": {}, \"iterations\": {}, \"flush_edits\": {}, \
         \"flushes_per_publish\": {}, \"publishes\": {}, \"churn\": \"{}\", \
         \"cores\": {}, \"seed\": {}}},\n{i}\
         \"merge_pass_ns\": [{}],\n{i}\"counter_read_ns\": [{}],\n{i}\
         \"counter_maint_ns\": [{}],\n{i}\"net_deltas\": [{}],\n{i}\
         \"dirty_vertices\": [{}],\n{i}\"edges\": [{}],\n{i}\
         \"merge_pass_mean_ns\": {:.0},\n{i}\"counter_read_mean_ns\": {:.0},\n{i}\
         \"counter_maint_mean_ns\": {:.0},\n{i}\
         \"publish_weight_pass_speedup\": {:.2},\n{i}\
         \"speedup_incl_maintenance\": {:.2},\n{i}\"bit_identical\": true",
        w.graph_n,
        w.iterations,
        w.flush_edits,
        w.flushes_per_publish,
        w.publishes,
        churn_label(w.churn),
        crate::host_cores(),
        w.seed,
        json_list(&r.merge_ns),
        json_list(&r.counter_read_ns),
        json_list(&r.counter_maint_ns),
        json_list(&r.net_deltas),
        json_list(&r.dirty_vertices),
        json_list(&r.edges),
        merge_mean,
        read_mean,
        maint_mean,
        merge_mean / read_mean.max(1.0),
        merge_mean / (read_mean + maint_mean).max(1.0),
        i = indent,
    )
}

/// Serialize the sweep as the `BENCH_serve.json` payload: the uniform
/// (acceptance) run at top level, the other runs nested by name.
pub fn to_json(
    w: &WeightsWorkload,
    r: &WeightsBenchResult,
    extras: &[(&str, &WeightsWorkload, &WeightsBenchResult)],
) -> String {
    let extra: String = extras
        .iter()
        .map(|(key, ew, er)| {
            format!(
                ",\n  \"{key}\": {{\n    {}\n  }}",
                json_body(ew, er, "    ")
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"weights\",\n  \"mode\": \"{}\",\n  {}{}\n}}\n",
        w.mode,
        json_body(w, r, "  "),
        extra,
    )
}

/// Run the sweep (uniform + consolidating churn), print the table, and
/// write `out_path`.
pub fn weights(w: &WeightsWorkload, out_path: &str) {
    let mut t = Table::new(
        format!(
            "publish-time weight pass: merge vs streaming counters ({})",
            w.mode
        ),
        &[
            "churn",
            "merge (ms)",
            "ctr read (ms)",
            "upkeep/publish (ms)",
            "publish speedup",
            "incl. upkeep",
            "dirty/publish",
            "net deltas",
        ],
    );
    // The acceptance run, the community-respecting variant, and the
    // freshness-first cadence (the serve default publishes every flush,
    // where upkeep amortizes against a merge pass *per flush*).
    let configs: [(&str, EditWorkload, usize); 3] = [
        ("uniform", EditWorkload::Uniform, w.flushes_per_publish),
        (
            "consolidating",
            EditWorkload::Consolidating,
            w.flushes_per_publish,
        ),
        ("publish_per_flush", EditWorkload::Uniform, 1),
    ];
    let mut runs: Vec<(WeightsWorkload, WeightsBenchResult)> = Vec::new();
    for &(_, churn, per_publish) in &configs {
        let wc = WeightsWorkload {
            churn,
            flushes_per_publish: per_publish,
            publishes: w.publishes * w.flushes_per_publish / per_publish.max(1),
            ..*w
        };
        eprintln!(
            "[weights:{}] n={}, T={}, {}x{}-edit flushes per publish, {} publishes, {} churn",
            wc.mode,
            wc.graph_n,
            wc.iterations,
            wc.flushes_per_publish,
            wc.flush_edits,
            wc.publishes,
            churn_label(churn),
        );
        let r = run_workload(&wc);
        let merge_mean = mean(&r.merge_ns);
        let read_mean = mean(&r.counter_read_ns);
        let maint_mean = mean(&r.counter_maint_ns);
        t.row(vec![
            format!("{} (x{})", churn_label(churn), per_publish),
            format!("{:.3}", merge_mean / 1e6),
            format!("{:.3}", read_mean / 1e6),
            format!("{:.3}", maint_mean / 1e6),
            format!("{:.2}x", merge_mean / read_mean.max(1.0)),
            format!("{:.2}x", merge_mean / (read_mean + maint_mean).max(1.0)),
            format!("{:.0}", mean(&r.dirty_vertices)),
            format!("{:.0}", mean(&r.net_deltas)),
        ]);
        runs.push((wc, r));
    }
    t.print();
    let json = to_json(
        &runs[0].0,
        &runs[0].1,
        &[
            ("consolidating", &runs[1].0, &runs[1].1),
            ("publish_per_flush", &runs[2].0, &runs[2].1),
        ],
    );
    std::fs::write(out_path, &json).expect("write weights JSON");
    eprintln!("[weights:{}] wrote {out_path}", w.mode);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_workload_is_bit_identical_and_serializes() {
        let w = WeightsWorkload {
            mode: "micro",
            graph_n: 150,
            iterations: 12,
            flush_edits: 40,
            flushes_per_publish: 2,
            publishes: 3,
            churn: EditWorkload::Uniform,
            seed: 7,
        };
        // run_workload asserts bit-identity internally at every publish.
        let r = run_workload(&w);
        assert_eq!(r.merge_ns.len(), 3);
        assert_eq!(r.counter_read_ns.len(), 3);
        let json = to_json(&w, &r, &[]);
        assert!(json.contains("\"experiment\": \"weights\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
