//! SLPA: the Speaker–Listener Label Propagation Algorithm (paper §II-B).
//!
//! The *synchronous* formulation used by the parallelized SLPA the paper
//! compares against (\[15\]): per iteration, every vertex receives one label
//! from each neighbor (the speaker uniformly picks one from its memory),
//! appends the plurality winner (ties broken uniformly), and after `T`
//! iterations labels below the frequency threshold `τ` are filtered out;
//! surviving labels define (overlapping) communities.
//!
//! All randomness is addressed through [`PickKey`]s, which makes this
//! implementation bit-identical to the BSP vertex program in
//! [`crate::slpa_bsp`] — asserted by tests.

use rslpa_graph::rng::{PickKey, Stream};
use rslpa_graph::{AdjacencyGraph, Cover, FxHashMap, Label, VertexId};

/// SLPA configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlpaConfig {
    /// Label-propagation iterations `T` (paper: 100).
    pub iterations: usize,
    /// Post-processing frequency threshold `τ` (paper: 0.2 ≈ 1/om).
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SlpaConfig {
    fn default() -> Self {
        Self {
            iterations: 100,
            threshold: 0.2,
            seed: 42,
        }
    }
}

/// Output of an SLPA run.
#[derive(Clone, Debug)]
pub struct SlpaResult {
    /// Per-vertex label memories of length `T + 1`.
    pub memories: Vec<Vec<Label>>,
    /// Communities extracted by thresholding.
    pub cover: Cover,
}

/// The label a speaker `u` sends to listener `v` at iteration `t`
/// (uniform over `u`'s memory, which has length `t` at that point).
#[inline]
pub(crate) fn speaker_pick(seed: u64, u: VertexId, v: VertexId, t: u32, memory: &[Label]) -> Label {
    let key = PickKey {
        seed,
        vertex: u,
        iteration: t,
        epoch: v,
    };
    memory[key.bounded(Stream::Src, memory.len() as u64) as usize]
}

/// Plurality winner of `received` for listener `v` at iteration `t`;
/// ties broken uniformly (deterministic through the key).
pub(crate) fn listener_select(
    seed: u64,
    v: VertexId,
    t: u32,
    received: &[Label],
    counts: &mut FxHashMap<Label, u32>,
) -> Option<Label> {
    if received.is_empty() {
        return None;
    }
    counts.clear();
    let mut max = 0u32;
    for &l in received {
        let c = counts.entry(l).or_insert(0);
        *c += 1;
        max = max.max(*c);
    }
    let mut tied: Vec<Label> = counts
        .iter()
        .filter(|(_, &c)| c == max)
        .map(|(&l, _)| l)
        .collect();
    tied.sort_unstable(); // canonical order before the random tie-break
    let key = PickKey::new(seed, v, t);
    Some(tied[key.bounded(Stream::VoteTie, tied.len() as u64) as usize])
}

/// Run synchronous SLPA on a static graph.
pub fn run_slpa(graph: &AdjacencyGraph, config: &SlpaConfig) -> SlpaResult {
    let n = graph.num_vertices();
    let mut memories: Vec<Vec<Label>> = (0..n as VertexId)
        .map(|v| {
            let mut m = Vec::with_capacity(config.iterations + 1);
            m.push(v);
            m
        })
        .collect();
    let mut received: Vec<Label> = Vec::new();
    let mut appended: Vec<Label> = vec![0; n];
    let mut counts: FxHashMap<Label, u32> = FxHashMap::default();
    for t in 1..=config.iterations as u32 {
        for v in 0..n as VertexId {
            received.clear();
            for &u in graph.neighbors(v) {
                received.push(speaker_pick(config.seed, u, v, t, &memories[u as usize]));
            }
            // Isolated vertices keep repeating their own label so memory
            // lengths stay aligned across the graph.
            appended[v as usize] = listener_select(config.seed, v, t, &received, &mut counts)
                .unwrap_or(memories[v as usize][0]);
        }
        for v in 0..n {
            memories[v].push(appended[v]);
        }
    }
    let cover = extract_cover(&memories, config.threshold);
    SlpaResult { memories, cover }
}

/// The labels a vertex retains after thresholding: frequency `≥ threshold`
/// of the memory length, falling back to the single most frequent label
/// (smallest id on ties) when nothing survives — reference-implementation
/// behaviour. Shared by the centralized and distributed extraction paths.
pub fn kept_labels(memory: &[Label], threshold: f64) -> Vec<Label> {
    let mut counts: FxHashMap<Label, u32> = FxHashMap::default();
    for &l in memory {
        *counts.entry(l).or_insert(0) += 1;
    }
    let min_count = (threshold * memory.len() as f64).ceil() as u32;
    let mut kept: Vec<Label> = counts
        .iter()
        .filter(|(_, &c)| c >= min_count)
        .map(|(&l, _)| l)
        .collect();
    if kept.is_empty() {
        let (&l, _) = counts
            .iter()
            .max_by_key(|(&l, &c)| (c, std::cmp::Reverse(l)))
            .expect("memory is never empty");
        kept.push(l);
    }
    kept.sort_unstable();
    kept
}

/// SLPA post-processing: per vertex, keep labels whose frequency in the
/// memory is `≥ threshold`; each surviving label names a community formed
/// by all vertices that kept it. Communities that are subsets of others
/// are dropped.
pub fn extract_cover(memories: &[Vec<Label>], threshold: f64) -> Cover {
    let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    for (v, memory) in memories.iter().enumerate() {
        for l in kept_labels(memory, threshold) {
            by_label.entry(l).or_default().push(v as VertexId);
        }
    }
    let mut communities: Vec<Vec<VertexId>> = by_label.into_values().collect();
    for c in communities.iter_mut() {
        c.sort_unstable();
    }
    // Subset removal: sort by size descending; a community is kept only if
    // it is not contained in an already-kept one.
    communities.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut kept: Vec<Vec<VertexId>> = Vec::with_capacity(communities.len());
    'outer: for c in communities {
        for k in &kept {
            if is_subset(&c, k) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    Cover::new(kept)
}

/// `a ⊆ b` for sorted slices.
fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut i = 0;
    for &x in a {
        // Advance in b; both sorted.
        while i < b.len() && b[i] < x {
            i += 1;
        }
        if i == b.len() || b[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> AdjacencyGraph {
        // Two K4s joined by a single bridge.
        let mut g = AdjacencyGraph::new(8);
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    g.insert_edge(i, j);
                }
            }
        }
        g.insert_edge(3, 4);
        g
    }

    #[test]
    fn memories_have_t_plus_one_labels() {
        let g = two_cliques();
        let r = run_slpa(
            &g,
            &SlpaConfig {
                iterations: 30,
                ..Default::default()
            },
        );
        for m in &r.memories {
            assert_eq!(m.len(), 31);
        }
    }

    #[test]
    fn detects_two_cliques() {
        let g = two_cliques();
        let r = run_slpa(
            &g,
            &SlpaConfig {
                iterations: 100,
                threshold: 0.3,
                seed: 1,
            },
        );
        // Expect (at least) two communities, one containing 0..3, other 4..7.
        let has_left = r
            .cover
            .communities()
            .iter()
            .any(|c| [0u32, 1, 2].iter().all(|v| c.contains(v)));
        let has_right = r
            .cover
            .communities()
            .iter()
            .any(|c| [5u32, 6, 7].iter().all(|v| c.contains(v)));
        assert!(
            has_left && has_right,
            "cover was {:?}",
            r.cover.communities()
        );
    }

    #[test]
    fn fig1_label_selection_semantics() {
        // Paper Fig. 1: received (1,1,2,2,3) — labels 1 and 2 tie at
        // frequency 2; one of them must win, never 3.
        let mut counts = FxHashMap::default();
        let mut winners = std::collections::HashSet::new();
        for seed in 0..64 {
            let w = listener_select(seed, 0, 1, &[1, 1, 2, 2, 3], &mut counts).unwrap();
            assert!(w == 1 || w == 2, "label 3 can never win");
            winners.insert(w);
        }
        assert_eq!(winners.len(), 2, "both tied labels win under some seed");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = two_cliques();
        let a = run_slpa(
            &g,
            &SlpaConfig {
                seed: 5,
                iterations: 50,
                ..Default::default()
            },
        );
        let b = run_slpa(
            &g,
            &SlpaConfig {
                seed: 5,
                iterations: 50,
                ..Default::default()
            },
        );
        assert_eq!(a.memories, b.memories);
        let c = run_slpa(
            &g,
            &SlpaConfig {
                seed: 6,
                iterations: 50,
                ..Default::default()
            },
        );
        assert_ne!(a.memories, c.memories);
    }

    #[test]
    fn isolated_vertex_keeps_own_label() {
        let mut g = AdjacencyGraph::new(3);
        g.insert_edge(0, 1);
        let r = run_slpa(
            &g,
            &SlpaConfig {
                iterations: 10,
                ..Default::default()
            },
        );
        assert!(r.memories[2].iter().all(|&l| l == 2));
    }

    #[test]
    fn extract_cover_threshold_filters() {
        // Vertex 0 memory: 8×a + 2×b; τ=0.3 keeps only a.
        let memories = vec![vec![7, 7, 7, 7, 7, 7, 7, 7, 9, 9], vec![7; 10]];
        let cover = extract_cover(&memories, 0.3);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.communities()[0], vec![0, 1]);
    }

    #[test]
    fn extract_cover_keeps_most_frequent_when_all_below() {
        let memories = vec![vec![1, 2, 3, 4, 5]]; // all at 0.2 < τ=0.5
        let cover = extract_cover(&memories, 0.5);
        assert_eq!(cover.len(), 1, "fallback to most frequent label");
    }

    #[test]
    fn subset_communities_removed() {
        // Label 1 community {0,1,2}; label 2 community {0,1} ⊂ it.
        let memories = vec![vec![1, 1, 2, 2], vec![1, 1, 2, 2], vec![1, 1, 1, 1]];
        let cover = extract_cover(&memories, 0.4);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.communities()[0], vec![0, 1, 2]);
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
        assert!(!is_subset(&[0, 1], &[0]));
    }
}
