//! Span guards: the instrumentation-facing API.
//!
//! A [`TraceWriter`] is a lane-bound handle cloned into each instrumented
//! thread. [`TraceWriter::span`] returns a RAII guard that records one
//! fixed-size span record when dropped; when tracing is disabled the call
//! is a single relaxed atomic load and the guard holds nothing.

use std::sync::Arc;

use crate::recorder::{RecordKind, Tracer};

/// A lane-bound handle for emitting spans and events.
///
/// Cloning is allowed so a helper object living on the same thread (e.g. a
/// mesh port) can carry its own handle, but a lane must only ever be
/// written from one thread at a time — concurrent writers to one lane
/// would race the ring's single-writer cursor.
#[derive(Clone)]
pub struct TraceWriter {
    tracer: Arc<Tracer>,
    lane: u16,
}

impl TraceWriter {
    pub(crate) fn new(tracer: Arc<Tracer>, lane: u16) -> Self {
        Self { tracer, lane }
    }

    /// Whether spans currently record (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Nanoseconds since the tracer's epoch (for externally-timed spans).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.tracer.now_ns()
    }

    /// Total records lost to ring overwrite, across every lane of the
    /// underlying recorder (for folding into service stats).
    pub fn dropped_records(&self) -> u64 {
        self.tracer.dropped_records()
    }

    /// Open a span named by the interned id `name`; the span closes (and
    /// the record is written) when the returned guard drops.
    #[inline]
    pub fn span(&self, name: u16) -> SpanGuard<'_> {
        self.span_with(name, 0)
    }

    /// [`TraceWriter::span`] with an aux payload (batch size, round
    /// index, ...) stored in the record.
    #[inline]
    pub fn span_with(&self, name: u16, aux: u64) -> SpanGuard<'_> {
        if !self.tracer.is_enabled() {
            return SpanGuard {
                writer: None,
                name: 0,
                aux: 0,
                start_ns: 0,
            };
        }
        SpanGuard {
            writer: Some(self),
            name,
            aux,
            start_ns: self.tracer.now_ns(),
        }
    }

    /// Record a point event (zero-duration record) with an aux payload.
    #[inline]
    pub fn event(&self, name: u16, aux: u64) {
        if self.tracer.is_enabled() {
            let now = self.tracer.now_ns();
            self.tracer
                .push(self.lane, name, RecordKind::Instant, now, 0, aux);
        }
    }

    /// Record an externally-timed span (timestamps from
    /// [`TraceWriter::now_ns`]). Useful when the measurement already
    /// exists for stats purposes and re-timing it would skew it.
    #[inline]
    pub fn record_span(&self, name: u16, start_ns: u64, dur_ns: u64, aux: u64) {
        if self.tracer.is_enabled() {
            self.tracer
                .push(self.lane, name, RecordKind::Span, start_ns, dur_ns, aux);
        }
    }
}

/// RAII guard returned by [`TraceWriter::span`]; writes one span record on
/// drop. Guards on one thread drop innermost-first, which is exactly the
/// well-nesting the exporter relies on.
#[must_use = "a span records when the guard drops; binding it to _ discards it immediately"]
pub struct SpanGuard<'a> {
    writer: Option<&'a TraceWriter>,
    name: u16,
    aux: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// Replace the aux payload before the span closes (e.g. once a batch
    /// size is known).
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(w) = self.writer {
            let end = w.tracer.now_ns();
            w.tracer.push(
                w.lane,
                self.name,
                RecordKind::Span,
                self.start_ns,
                end.saturating_sub(self.start_ns),
                self.aux,
            );
        }
    }
}
