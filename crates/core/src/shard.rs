//! Per-shard Correction Propagation: the repair state one maintenance
//! shard owns, the boundary-exchange message protocol between shards, and
//! the peer-to-peer mailbox mesh the shards exchange over.
//!
//! The serve subsystem partitions the vertex space with a
//! [`Partitioner`]; each shard owns the
//! adjacency rows, label sequences, pick provenance, and receiver records
//! of *its* vertices. After an edit batch, every shard repairs its own
//! affected vertices (Algorithm 2 Phase A) and drains the resulting
//! cascade as far as it runs inside the shard. Corrections that cross a
//! partition boundary become [`ShardMsg`]s addressed to the owner of the
//! remote vertex. Two transports deliver them:
//!
//! * **coordinator-mediated rounds** (the pre-mesh path, kept as the
//!   baseline): workers hand their outboxes back to a coordinator, which
//!   regroups them by owner and sends each shard its inbox — two channel
//!   hops per active shard per round, and every envelope crosses two
//!   channels;
//! * **the peer-to-peer mailbox mesh** ([`MailboxPort`]): every worker
//!   holds a direct channel to every peer and delivers its outbox itself
//!   (one hop per envelope). Rounds synchronize on a shared
//!   sense-reversing barrier ([`SenseBarrier`]) and terminate by a
//!   monotone sent-envelope counter: **one** barrier wait per round, with
//!   the last arriver (the leader) publishing the counter snapshot from
//!   inside the barrier's pre-release closure. Nobody can be sending while
//!   the leader reads (all ports have arrived), and nobody can read a
//!   stale snapshot (the release publishes it), so all ports agree —
//!   without any coordinator traffic or second barrier — on whether
//!   anything was sent and when to stop.
//!
//! The protocol is the same three-message scheme as the BSP vertex program
//! ([`crate::incremental_bsp`]): `Unrecord` detaches a stale receiver
//! record, `Fetch` registers a new pick and requests its label, `Value`
//! carries a corrected label guarded by its origin `(src, pos)` so stale
//! deliveries are dropped. Because every pick is a pure function of
//! `(seed, vertex, iteration, epoch)` and slot dependencies point strictly
//! backwards in iteration time (`pos < t`), the repaired fixed point is
//! unique — independent of shard count, message ordering, transport, and
//! how eagerly a shard drains its local cascade. The tests below pin that
//! claim against the centralized [`apply_correction`](crate::incremental)
//! bit for bit, for both transports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use rslpa_graph::{
    AdjacencyGraph, FxHashMap, FxHashSet, Label, Partitioner, SlotDelta, VertexDelta, VertexId,
};
use rslpa_trace::{names, TraceWriter};

use crate::barrier::SenseBarrier;
use crate::config::DampingConfig;
use crate::propagation::draw_pick;
use crate::state::{LabelState, Record, NO_SOURCE};

/// A boundary-exchange message between shards (same protocol as the BSP
/// correction program, carried over shard channels instead of the
/// simulator's per-vertex mailboxes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMsg {
    /// "Forget that I picked your slot `slot` for my iteration `k`."
    Unrecord {
        /// Slot at the (old) source.
        slot: u32,
        /// Iteration at the sender.
        k: u32,
    },
    /// "Register me for your slot `pos` and send me its label for my
    /// iteration `k`."
    Fetch {
        /// Requested slot at the destination.
        pos: u32,
        /// Iteration at the sender.
        k: u32,
    },
    /// A label value for the destination's slot `t`, read from the
    /// sender's slot `origin_pos` (staleness guard).
    Value {
        /// Slot at the destination this value fills.
        t: u32,
        /// Slot at the sender it was read from.
        origin_pos: u32,
        /// The label.
        label: Label,
    },
}

/// An addressed [`ShardMsg`]: the routing unit of the exchange protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Destination vertex (owner shard = `partitioner.assign(to)`).
    pub to: VertexId,
    /// Sending vertex.
    pub from: VertexId,
    /// Payload.
    pub msg: ShardMsg,
}

/// Work accounting for one shard over one flush (summable across shards
/// and exchange rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFlushReport {
    /// Picks re-drawn in Phase A.
    pub repicks: usize,
    /// Category-3 keep/redraw coins flipped.
    pub coins: usize,
    /// `Value` messages applied (stale ones excluded).
    pub deliveries: usize,
    /// Applied deliveries that changed the stored label.
    pub value_changes: usize,
    /// Distinct label slots written this flush (the η analogue).
    pub eta: usize,
    /// Envelopes that crossed a shard boundary.
    pub boundary_msgs: usize,
    /// Distinct vertices whose stored labels changed this flush (the
    /// dirty region; vertex ownership is disjoint so per-shard counts
    /// sum exactly).
    pub dirty_vertices: usize,
    /// Re-sprays suppressed at over-cap vertices (damping only; always 0
    /// without a [`DampingConfig`]).
    pub damped_deferrals: usize,
}

impl ShardFlushReport {
    /// Accumulate another report into this one.
    pub fn absorb(&mut self, other: &ShardFlushReport) {
        self.repicks += other.repicks;
        self.coins += other.coins;
        self.deliveries += other.deliveries;
        self.value_changes += other.value_changes;
        self.eta += other.eta;
        self.boundary_msgs += other.boundary_msgs;
        self.dirty_vertices += other.dirty_vertices;
        self.damped_deferrals += other.damped_deferrals;
    }
}

/// A vertex's full provenance rows in transit between shards
/// (repartitioning moves whole rows; nothing else ever crosses outside
/// the message protocol).
#[derive(Clone, Debug)]
pub struct VertexRowData {
    /// `T + 1` labels.
    pub labels: Vec<Label>,
    /// `(src, pos)` per pick slot.
    pub picks: Vec<(VertexId, u32)>,
    /// Repick epoch per slot.
    pub epochs: Vec<u32>,
    /// Receiver records.
    pub records: Vec<Record>,
    /// Sorted neighbor list.
    pub neighbors: Vec<VertexId>,
    /// Whether the label sequence changed since the last dirty drain.
    pub dirty: bool,
    /// Damping: sorted slots whose receivers may be out of date and
    /// await an unmute release (empty without damping).
    pub pending: Vec<u32>,
}

/// The full provenance rows of one owned vertex.
#[derive(Clone, Debug)]
struct VertexRow {
    /// `T + 1` labels (`labels[0]` is the immutable initial label).
    labels: Vec<Label>,
    /// `(src, pos)` per pick slot, index `t - 1`.
    picks: Vec<(VertexId, u32)>,
    /// Repick epoch per slot, index `t - 1`.
    epochs: Vec<u32>,
    /// Receiver records of this vertex (who picked my slots).
    records: Vec<Record>,
    /// Sorted neighbor list (the shard-owned adjacency row).
    neighbors: Vec<VertexId>,
    /// Damping: sorted slots whose receivers may be out of date —
    /// changed while this vertex was muted, or picked by a listener the
    /// muted fetch never answered — awaiting a budgeted unmute release.
    pending: Vec<u32>,
}

impl VertexRow {
    /// A fresh, isolated vertex: every slot repeats the own label.
    fn fresh(v: VertexId, t_max: usize) -> Self {
        Self {
            labels: vec![v as Label; t_max + 1],
            picks: vec![(NO_SOURCE, 0); t_max],
            epochs: vec![0; t_max],
            records: Vec::new(),
            neighbors: Vec::new(),
            pending: Vec::new(),
        }
    }
}

/// Park slot `t` for an unmute release: its value changed while the
/// vertex was muted, or a muted fetch left a listener holding its own
/// stale value.
fn pending_park(pending: &mut Vec<u32>, t: u32) {
    if let Err(i) = pending.binary_search(&t) {
        pending.insert(i, t);
    }
}

/// Forget a parked slot (its receivers are being brought up to date by a
/// normal forward).
fn pending_clear(pending: &mut Vec<u32>, t: u32) {
    if let Ok(i) = pending.binary_search(&t) {
        pending.remove(i);
    }
}

/// Repair state owned by one maintenance shard.
pub struct ShardRepairState {
    shard: usize,
    t_max: usize,
    seed: u64,
    value_pruned: bool,
    /// Degree-capped cascade damping; `None` (default) forwards every
    /// correction immediately, like the paper's Algorithm 2.
    damping: Option<DampingConfig>,
    partitioner: Arc<dyn Partitioner>,
    rows: FxHashMap<VertexId, VertexRow>,
    /// Owned vertices whose label sequence changed since the last drain
    /// (the input to dirty-region post-processing).
    dirty: FxHashSet<VertexId>,
    /// Label-slot value changes since the last
    /// [`take_slot_deltas`](Self::take_slot_deltas), in application order
    /// — the stream a central
    /// [`EdgeCounters`](crate::edge_counters::EdgeCounters) consumes.
    slot_deltas: Vec<SlotDelta>,
    /// Slots written during the current flush (distinct-η accounting).
    touched: FxHashSet<(VertexId, u32)>,
    /// Vertices whose stored labels changed during the current flush
    /// (distinct dirty-region accounting).
    flush_dirty: FxHashSet<VertexId>,
    /// Local delivery queue: envelopes addressed to this shard that have
    /// not been applied yet.
    local: Vec<Envelope>,
    /// Owned vertices with a nonempty `pending` row (damping); an index
    /// so release staging never scans the full row map.
    pending_set: FxHashSet<VertexId>,
}

impl ShardRepairState {
    /// Carve shard `shard`'s rows out of a globally propagated state.
    pub fn from_state(
        state: &LabelState,
        graph: &AdjacencyGraph,
        shard: usize,
        partitioner: Arc<dyn Partitioner>,
    ) -> Self {
        let t_max = state.iterations();
        let mut rows = FxHashMap::default();
        for v in 0..state.num_vertices() as VertexId {
            if partitioner.assign(v) != shard {
                continue;
            }
            rows.insert(
                v,
                VertexRow {
                    labels: state.label_sequence(v).to_vec(),
                    picks: (1..=t_max as u32).map(|t| state.pick(v, t)).collect(),
                    epochs: (1..=t_max as u32).map(|t| state.epoch(v, t)).collect(),
                    records: state.records(v).to_vec(),
                    neighbors: graph.neighbors(v).to_vec(),
                    pending: Vec::new(),
                },
            );
        }
        Self {
            shard,
            t_max,
            seed: state.seed(),
            // Paper-faithful unconditional forwarding by default;
            // `set_value_pruned` selects the ablation semantics.
            value_pruned: false,
            damping: None,
            partitioner,
            rows,
            dirty: FxHashSet::default(),
            slot_deltas: Vec::new(),
            touched: FxHashSet::default(),
            flush_dirty: FxHashSet::default(),
            local: Vec::new(),
            pending_set: FxHashSet::default(),
        }
    }

    /// Select the cascade semantics (paper-faithful unconditional
    /// forwarding vs value-pruned ablation).
    pub fn set_value_pruned(&mut self, pruned: bool) {
        self.value_pruned = pruned;
    }

    /// Enable (or disable) degree-capped cascade damping. Must be set
    /// identically on every shard of an engine, before the first flush.
    pub fn set_damping(&mut self, damping: Option<DampingConfig>) {
        self.damping = damping;
    }

    /// Whether any owned vertex has a parked re-spray awaiting release.
    /// The mailbox engine uses this to keep posting (possibly empty)
    /// flushes to an otherwise-idle shard until its pending work drains.
    pub fn has_pending(&self) -> bool {
        !self.pending_set.is_empty()
    }

    /// Shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        self.rows.len()
    }

    /// Whether this shard owns `v` under the current partitioner.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        self.partitioner.assign(v) == self.shard
    }

    /// Owner shard of `v` under the current partitioner.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.partitioner.assign(v)
    }

    /// Owned vertices with materialized rows, ascending (the iteration
    /// order of partition-owned counter collection).
    pub fn owned_sorted(&self) -> Vec<VertexId> {
        let mut owned: Vec<VertexId> = self.rows.keys().copied().collect();
        owned.sort_unstable();
        owned
    }

    /// The shard-owned adjacency row of `v` (empty for vertices without a
    /// materialized row — isolated fresh ids).
    pub fn neighbors_of(&self, v: VertexId) -> &[VertexId] {
        self.rows
            .get(&v)
            .map(|r| r.neighbors.as_slice())
            .unwrap_or(&[])
    }

    /// Start a new flush: reset the distinct-slot (η) accounting.
    /// [`apply_deltas`](Self::apply_deltas) does this implicitly; a shard
    /// that participates in a flush **only** through exchange (no routed
    /// deltas — possible under the mailbox engine's sub-queue admission)
    /// must call this before its first [`exchange`](Self::exchange) of
    /// the flush, or slots it repaired in an earlier flush would be
    /// deduplicated out of this flush's η.
    pub fn begin_flush(&mut self) {
        self.touched.clear();
        self.flush_dirty.clear();
    }

    /// Apply this shard's per-vertex deltas (Phase A of Algorithm 2), then
    /// drain the local cascade; cross-shard envelopes are appended to
    /// `out`. Starts a new flush (resets the distinct-slot accounting).
    pub fn apply_deltas(
        &mut self,
        deltas: &[(VertexId, VertexDelta)],
        out: &mut Vec<Envelope>,
    ) -> ShardFlushReport {
        self.begin_flush();
        let mut report = ShardFlushReport::default();
        let mut staged = Vec::new();
        // Bring the adjacency rows to the post-batch topology first:
        // every muting decision of this flush — the release gate below
        // included — reads post-batch degrees, exactly like the
        // centralized engine's `graph_after`.
        for (v, delta) in deltas {
            debug_assert!(self.owns(*v), "delta routed to the wrong shard");
            self.apply_adjacency(*v, delta);
        }
        // Damping: release parked re-sprays next, against the
        // pre-Phase-A labels and records (the centralized engine stages
        // its releases at the same point).
        self.stage_releases(&mut staged);
        for (v, delta) in deltas {
            self.phase_a(*v, delta, &mut staged, &mut report);
        }
        self.route(staged, out, &mut report);
        self.drain_local(out, &mut report);
        report
    }

    /// Damping release: for every owned vertex with parked slots whose
    /// degree dropped back to the cap or under, in ascending (vertex,
    /// slot) order, forward the current value of each parked slot to its
    /// receivers under the per-hub `flush_budget` (always at least one
    /// slot, so pending work cannot starve). Vertices still over the cap
    /// stay parked untouched. The staged `Value`s carry the pick-origin
    /// guard, so a receiver that re-picks away this very flush drops
    /// them.
    fn stage_releases(&mut self, staged: &mut Vec<Envelope>) {
        let Some(cfg) = self.damping else { return };
        if self.pending_set.is_empty() {
            return;
        }
        let budget = cfg.flush_budget.max(1);
        let mut vids: Vec<VertexId> = self.pending_set.iter().copied().collect();
        vids.sort_unstable();
        for v in vids {
            let row = self
                .rows
                .get_mut(&v)
                .expect("pending index points to a row");
            if row.neighbors.len() > cfg.degree_cap {
                continue; // still muted: receivers keep waiting
            }
            let slots = std::mem::take(&mut row.pending);
            let mut kept: Vec<u32> = Vec::new();
            let mut used = 0usize;
            let mut released_any = false;
            let mut stopped = false;
            for t in slots {
                if stopped {
                    kept.push(t);
                    continue;
                }
                let fanout = row.records.iter().filter(|r| r.slot == t).count();
                if released_any && used + fanout > budget {
                    stopped = true;
                    kept.push(t);
                    continue;
                }
                used += fanout;
                released_any = true;
                let current = row.labels[t as usize];
                for r in row.records.iter().filter(|r| r.slot == t) {
                    staged.push(Envelope {
                        to: r.receiver,
                        from: v,
                        msg: ShardMsg::Value {
                            t: r.k,
                            origin_pos: t,
                            label: current,
                        },
                    });
                }
            }
            if kept.is_empty() {
                self.pending_set.remove(&v);
            }
            row.pending = kept;
        }
    }

    /// Deliver a round of inbound envelopes (all addressed to owned
    /// vertices), drain the local cascade, and append outbound cross-shard
    /// envelopes to `out`.
    pub fn exchange(&mut self, inbox: Vec<Envelope>, out: &mut Vec<Envelope>) -> ShardFlushReport {
        let mut report = ShardFlushReport::default();
        self.local.extend(inbox);
        self.drain_local(out, &mut report);
        report
    }

    /// Replace the ownership map (repartitioning). The caller is
    /// responsible for moving rows via [`extract_rows`](Self::extract_rows)
    /// / [`adopt_rows`](Self::adopt_rows) so that every vertex's row lives
    /// on its (new) owner exactly once.
    pub fn set_partitioner(&mut self, partitioner: Arc<dyn Partitioner>) {
        self.partitioner = partitioner;
    }

    /// Remove and return the rows of `ids` (vertices this shard no longer
    /// owns), with their dirty flags. Must only be called between flushes
    /// (no envelopes in flight).
    pub fn extract_rows(&mut self, ids: &[VertexId]) -> Vec<(VertexId, VertexRowData)> {
        debug_assert!(
            self.slot_deltas.is_empty(),
            "slot deltas must be drained before rows migrate"
        );
        ids.iter()
            .map(|&v| {
                let row = self.rows.remove(&v).expect("extracting a row we own");
                let dirty = self.dirty.remove(&v);
                self.pending_set.remove(&v);
                (
                    v,
                    VertexRowData {
                        labels: row.labels,
                        picks: row.picks,
                        epochs: row.epochs,
                        records: row.records,
                        neighbors: row.neighbors,
                        dirty,
                        pending: row.pending,
                    },
                )
            })
            .collect()
    }

    /// Install rows migrated from other shards.
    pub fn adopt_rows(&mut self, rows: Vec<(VertexId, VertexRowData)>) {
        debug_assert!(
            self.slot_deltas.is_empty(),
            "slot deltas must be drained before rows migrate"
        );
        for (v, data) in rows {
            debug_assert!(self.owns(v), "adopting a row we do not own");
            if data.dirty {
                self.dirty.insert(v);
            }
            if !data.pending.is_empty() {
                self.pending_set.insert(v);
            }
            let prev = self.rows.insert(
                v,
                VertexRow {
                    labels: data.labels,
                    picks: data.picks,
                    epochs: data.epochs,
                    records: data.records,
                    neighbors: data.neighbors,
                    pending: data.pending,
                },
            );
            debug_assert!(prev.is_none(), "adopted row collides with a live one");
        }
    }

    /// Take the label-slot changes accumulated since the last call, in
    /// application order — the counter-maintenance stream for a central
    /// [`EdgeCounters`](crate::edge_counters::EdgeCounters) store.
    ///
    /// Must be drained **once per flush, before any row migration**: a
    /// vertex's deltas chain across drains only if the drains happen in
    /// emission order, and migration hands the vertex (and its future
    /// deltas) to a different shard. [`extract_rows`](Self::extract_rows)
    /// / [`adopt_rows`](Self::adopt_rows) assert the queue is empty.
    pub fn take_slot_deltas(&mut self) -> Vec<SlotDelta> {
        std::mem::take(&mut self.slot_deltas)
    }

    /// Owned vertices whose label sequences changed since the last drain,
    /// with their current sequences; clears the dirty set.
    pub fn drain_dirty(&mut self) -> Vec<(VertexId, Vec<Label>)> {
        let mut dirty: Vec<VertexId> = self.dirty.drain().collect();
        dirty.sort_unstable();
        dirty
            .into_iter()
            .map(|v| (v, self.rows[&v].labels.clone()))
            .collect()
    }

    /// Copy this shard's rows back into a global [`LabelState`] (test and
    /// inspection support; `state` must be sized to cover the owned ids).
    pub fn export_into(&self, state: &mut LabelState) {
        let mut owned: Vec<&VertexId> = self.rows.keys().collect();
        owned.sort_unstable();
        for &v in owned {
            let row = &self.rows[&v];
            for t in 1..=self.t_max as u32 {
                state.set_label(v, t, row.labels[t as usize]);
                let (src, pos) = row.picks[t as usize - 1];
                state.set_pick(v, t, src, pos);
                while state.epoch(v, t) < row.epochs[t as usize - 1] {
                    state.bump_epoch(v, t);
                }
            }
            for r in &row.records {
                state.add_record(v, r.slot, r.receiver, r.k);
            }
        }
    }

    /// Fold one vertex's edge delta into its adjacency row (creating the
    /// row for a fresh vertex). Runs for the whole shard before release
    /// staging and Phase A, so both see post-batch degrees.
    fn apply_adjacency(&mut self, v: VertexId, delta: &VertexDelta) {
        let t_max = self.t_max;
        let row = self
            .rows
            .entry(v)
            .or_insert_with(|| VertexRow::fresh(v, t_max));
        for &gone in &delta.removed {
            if let Ok(i) = row.neighbors.binary_search(&gone) {
                row.neighbors.remove(i);
            }
        }
        for &new in &delta.added {
            if let Err(i) = row.neighbors.binary_search(&new) {
                row.neighbors.insert(i, new);
            }
        }
    }

    /// Phase A for one owned vertex: re-examine every pick slot against
    /// the (already updated) adjacency row, stage protocol messages.
    fn phase_a(
        &mut self,
        v: VertexId,
        delta: &VertexDelta,
        staged: &mut Vec<Envelope>,
        report: &mut ShardFlushReport,
    ) {
        let t_max = self.t_max as u32;
        let seed = self.seed;
        let value_pruned = self.value_pruned;
        let row = self
            .rows
            .get_mut(&v)
            .expect("apply_adjacency materialized the row");
        for t in 1..=t_max {
            let ti = t as usize - 1;
            let (old_src, old_pos) = row.picks[ti];
            if row.neighbors.is_empty() {
                if old_src != NO_SOURCE {
                    staged.push(Envelope {
                        to: old_src,
                        from: v,
                        msg: ShardMsg::Unrecord {
                            slot: old_pos,
                            k: t,
                        },
                    });
                    row.picks[ti] = (NO_SOURCE, 0);
                    let own = row.labels[0];
                    let old = row.labels[t as usize];
                    let changed = old != own;
                    row.labels[t as usize] = own;
                    report.repicks += 1;
                    if self.touched.insert((v, t)) {
                        report.eta += 1;
                    }
                    if changed {
                        if self.flush_dirty.insert(v) {
                            report.dirty_vertices += 1;
                        }
                        self.dirty.insert(v);
                        self.slot_deltas.push(SlotDelta {
                            v,
                            slot: t,
                            old,
                            new: own,
                        });
                    }
                    // A reverted slot gets no incoming Value to trigger
                    // forwarding, so notify its receivers directly. (A
                    // reverted vertex has degree 0 — always under any
                    // damping cap — but a former hub may still carry a
                    // parked entry; this forward supersedes it.)
                    if !value_pruned || changed {
                        pending_clear(&mut row.pending, t);
                        if row.pending.is_empty() {
                            self.pending_set.remove(&v);
                        }
                        for r in &row.records {
                            if r.slot == t {
                                staged.push(Envelope {
                                    to: r.receiver,
                                    from: v,
                                    msg: ShardMsg::Value {
                                        t: r.k,
                                        origin_pos: t,
                                        label: own,
                                    },
                                });
                            }
                        }
                    }
                }
                continue;
            }
            let needs_full_repick =
                old_src == NO_SOURCE || delta.removed.binary_search(&old_src).is_ok();
            if needs_full_repick {
                row.epochs[ti] += 1;
                let (src, pos) = draw_pick(seed, v, t, row.epochs[ti], &row.neighbors);
                stage_repick(v, t, old_src, old_pos, src, pos, row, staged, report);
                continue;
            }
            if delta.added.is_empty() {
                continue; // Category 2, source survived (Theorem 4).
            }
            // Category 3, surviving pick: keep with probability n_u / deg.
            let deg = row.neighbors.len();
            let na = delta.added.len();
            row.epochs[ti] += 1;
            let key = rslpa_graph::rng::PickKey {
                seed,
                vertex: v,
                iteration: t,
                epoch: row.epochs[ti],
            };
            report.coins += 1;
            if key.unit_f64(rslpa_graph::rng::Stream::Cat3Coin) < na as f64 / deg as f64 {
                // Redraw from the new neighbors only (Theorem 5).
                row.epochs[ti] += 1;
                let (src, pos) = draw_pick(seed, v, t, row.epochs[ti], &delta.added);
                stage_repick(v, t, old_src, old_pos, src, pos, row, staged, report);
            }
        }
    }

    /// Apply every locally-deliverable envelope, batch-by-destination with
    /// the BSP step ordering, until only cross-shard envelopes remain.
    fn drain_local(&mut self, out: &mut Vec<Envelope>, report: &mut ShardFlushReport) {
        while !self.local.is_empty() {
            let pending = std::mem::take(&mut self.local);
            // Group by destination, preserving arrival order per vertex.
            let mut by_dest: FxHashMap<VertexId, Vec<Envelope>> = FxHashMap::default();
            for env in pending {
                by_dest.entry(env.to).or_default().push(env);
            }
            let mut dests: Vec<VertexId> = by_dest.keys().copied().collect();
            dests.sort_unstable();
            let mut staged = Vec::new();
            for v in dests {
                self.step_vertex(v, &by_dest[&v], &mut staged, report);
            }
            self.route(staged, out, report);
        }
    }

    /// One vertex's superstep: unrecords, values (coalesced), fetches,
    /// then forwards — the exact ordering of the BSP correction program.
    fn step_vertex(
        &mut self,
        v: VertexId,
        inbox: &[Envelope],
        staged: &mut Vec<Envelope>,
        report: &mut ShardFlushReport,
    ) {
        let damping = self.damping;
        let row = self.rows.get_mut(&v).expect("message to unknown vertex");
        // 1. Unrecords: detach receivers that repicked away.
        for env in inbox {
            if let ShardMsg::Unrecord { slot, k } = env.msg {
                let i = row
                    .records
                    .iter()
                    .position(|r| r.slot == slot && r.receiver == env.from && r.k == k)
                    .expect("unrecord must reference a live record");
                row.records.swap_remove(i);
            }
        }
        // 2. Values, staleness-guarded; collect slots whose forward is due.
        let mut changed_slots: Vec<u32> = Vec::new();
        for env in inbox {
            if let ShardMsg::Value {
                t,
                origin_pos,
                label,
            } = env.msg
            {
                let ti = t as usize - 1;
                if row.picks[ti] != (env.from, origin_pos) {
                    continue; // stale: the slot was repicked meanwhile
                }
                report.deliveries += 1;
                let old = row.labels[t as usize];
                let changed = old != label;
                row.labels[t as usize] = label;
                if self.touched.insert((v, t)) {
                    report.eta += 1;
                }
                if changed {
                    report.value_changes += 1;
                    if self.flush_dirty.insert(v) {
                        report.dirty_vertices += 1;
                    }
                    self.dirty.insert(v);
                    self.slot_deltas.push(SlotDelta {
                        v,
                        slot: t,
                        old,
                        new: label,
                    });
                    // Damping: a muted vertex parks the changed slot —
                    // its receivers catch up at the unmute release.
                    if let Some(cfg) = damping {
                        if row.neighbors.len() > cfg.degree_cap {
                            pending_park(&mut row.pending, t);
                            self.pending_set.insert(v);
                        }
                    }
                }
                if !self.value_pruned || changed {
                    changed_slots.push(t);
                }
            }
        }
        changed_slots.sort_unstable();
        changed_slots.dedup();
        // 3. Serve fetches with post-update labels; snapshot the record
        //    count first so step 4 does not double-deliver to them.
        //    A muted owner (over the degree cap) registers the record but
        //    suppresses the reply: the requester keeps its own previous
        //    value by silence, and the parked slot re-delivers at the
        //    unmute release. (The centralized engine's muted re-pick read
        //    is the same move.)
        let muted_owner = damping.is_some_and(|cfg| row.neighbors.len() > cfg.degree_cap);
        let pre_fetch_records = row.records.len();
        for env in inbox {
            if let ShardMsg::Fetch { pos, k } = env.msg {
                row.records.push(Record {
                    slot: pos,
                    receiver: env.from,
                    k,
                });
                if muted_owner {
                    pending_park(&mut row.pending, pos);
                    self.pending_set.insert(v);
                    report.damped_deferrals += 1;
                    continue;
                }
                staged.push(Envelope {
                    to: env.from,
                    from: v,
                    msg: ShardMsg::Value {
                        t: k,
                        origin_pos: pos,
                        label: row.labels[pos as usize],
                    },
                });
            }
        }
        // 4. Forward corrections to previously-registered receivers — or,
        //    at an over-cap vertex under damping, defer the whole
        //    re-spray (changes were parked at their change sites).
        if let Some(cfg) = damping {
            if row.neighbors.len() > cfg.degree_cap {
                report.damped_deferrals += changed_slots.len();
                return;
            }
        }
        for &t in &changed_slots {
            if damping.is_some() {
                // Under the cap (again): this forward updates every
                // receiver, superseding any parked entry.
                pending_clear(&mut row.pending, t);
                if row.pending.is_empty() {
                    self.pending_set.remove(&v);
                }
            }
            let label = row.labels[t as usize];
            for i in 0..pre_fetch_records {
                let r = row.records[i];
                if r.slot == t {
                    staged.push(Envelope {
                        to: r.receiver,
                        from: v,
                        msg: ShardMsg::Value {
                            t: r.k,
                            origin_pos: t,
                            label,
                        },
                    });
                }
            }
        }
    }

    /// Split staged envelopes into the local queue and the cross-shard
    /// outbox.
    fn route(
        &mut self,
        staged: Vec<Envelope>,
        out: &mut Vec<Envelope>,
        report: &mut ShardFlushReport,
    ) {
        for env in staged {
            if self.owns(env.to) {
                self.local.push(env);
            } else {
                report.boundary_msgs += 1;
                out.push(env);
            }
        }
    }
}

/// Stage the bookkeeping of a re-drawn pick: unrecord the old source,
/// register with (and fetch from) the new one.
#[allow(clippy::too_many_arguments)]
fn stage_repick(
    v: VertexId,
    t: u32,
    old_src: VertexId,
    old_pos: u32,
    src: VertexId,
    pos: u32,
    row: &mut VertexRow,
    staged: &mut Vec<Envelope>,
    report: &mut ShardFlushReport,
) {
    if old_src != NO_SOURCE {
        staged.push(Envelope {
            to: old_src,
            from: v,
            msg: ShardMsg::Unrecord {
                slot: old_pos,
                k: t,
            },
        });
    }
    row.picks[t as usize - 1] = (src, pos);
    staged.push(Envelope {
        to: src,
        from: v,
        msg: ShardMsg::Fetch { pos, k: t },
    });
    report.repicks += 1;
}

/// Shared synchronization state of a peer-to-peer mailbox mesh: the round
/// barrier plus a **monotone** count of envelopes ever sent over peer
/// channels. The counter is never reset — each port diffs successive
/// snapshots — so no reset has to be ordered against anyone's sends.
struct MeshCore {
    barrier: SenseBarrier,
    sent: AtomicU64,
    /// The round's agreed snapshot of `sent`, stored by the barrier leader
    /// inside the pre-release closure (so it is taken after every arrival,
    /// i.e. after every send of the round) and published to all ports by
    /// the barrier's release. Relaxed accesses suffice: the sense flip's
    /// release/acquire edge orders them.
    snapshot: AtomicU64,
}

/// Per-flush accounting of one port's mesh exchange (summable across
/// flushes; the serve layer folds these into its stats histograms).
#[derive(Clone, Debug, Default)]
pub struct MeshExchangeReport {
    /// Exchange rounds that delivered at least one envelope somewhere.
    pub rounds: u64,
    /// Peer batches this port sent (one channel hop each).
    pub batches_sent: u64,
    /// Envelopes this port sent.
    pub envelopes_sent: u64,
    /// Inbox depth (envelopes drained) per delivering round.
    pub inbox_depths: Vec<u64>,
    /// Wall time this port spent parked on the round barrier
    /// (`barrier_arrive + barrier_depart`).
    pub barrier_wait: Duration,
    /// Barrier time spent waiting for stragglers to arrive (protocol /
    /// imbalance cost).
    pub barrier_arrive: Duration,
    /// Barrier time between the leader's release and this port actually
    /// resuming (wakeup/scheduling latency).
    pub barrier_depart: Duration,
    /// The mesh barrier was poisoned mid-exchange (a peer worker died);
    /// the session bailed out without reaching quiescence.
    pub poisoned: bool,
}

/// A cloneable handle that poisons a mesh's round barrier from any
/// thread. A dying worker (or the coordinator that noticed it die) uses
/// this to make sure no surviving peer stays parked on the barrier
/// waiting for an arrival that will never come.
#[derive(Clone)]
pub struct MeshPoisoner(Arc<MeshCore>);

impl MeshPoisoner {
    /// Poison the mesh barrier (idempotent, one-way).
    pub fn poison(&self) {
        self.0.barrier.poison();
    }
}

/// One shard's endpoint of the peer-to-peer mailbox mesh: a direct
/// channel to every peer, the shared round barrier, and this port's last
/// sent-counter snapshot.
///
/// Every exchange session must involve **every** port of the mesh (the
/// barrier is sized to the shard count), and each session leaves all
/// ports with the same snapshot — the invariant that lets the mesh be
/// reused across flushes without a reset.
pub struct MailboxPort {
    shard: usize,
    peers: Vec<Option<Sender<Vec<Envelope>>>>,
    inbox: Receiver<Vec<Envelope>>,
    core: Arc<MeshCore>,
    last_snapshot: u64,
    /// This port's private sense flag for the mesh barrier (flipped every
    /// round; see [`SenseBarrier`]).
    sense: bool,
    /// Flight-recorder handle for this port's lane (the owning worker
    /// thread's), attached by the serve layer; `None` leaves the port
    /// uninstrumented.
    trace: Option<TraceWriter>,
}

/// Build a fully-connected mailbox mesh for `shards` ports (index `i` of
/// the returned vector belongs to shard `i`).
pub fn build_mesh(shards: usize) -> Vec<MailboxPort> {
    let core = Arc::new(MeshCore {
        barrier: SenseBarrier::new(shards),
        sent: AtomicU64::new(0),
        snapshot: AtomicU64::new(0),
    });
    let mut senders: Vec<Sender<Vec<Envelope>>> = Vec::with_capacity(shards);
    let mut inboxes: Vec<Receiver<Vec<Envelope>>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel();
        senders.push(tx);
        inboxes.push(rx);
    }
    inboxes
        .into_iter()
        .enumerate()
        .map(|(shard, inbox)| MailboxPort {
            shard,
            peers: senders
                .iter()
                .enumerate()
                .map(|(i, tx)| (i != shard).then(|| tx.clone()))
                .collect(),
            inbox,
            core: Arc::clone(&core),
            last_snapshot: 0,
            sense: false,
            trace: None,
        })
        .collect()
}

impl MailboxPort {
    /// Shard index this port belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Attach a flight-recorder handle. The writer must be bound to the
    /// lane of the thread that will drive this port — the lane rings are
    /// single-writer, and the port records from the owning worker thread.
    pub fn set_trace(&mut self, trace: TraceWriter) {
        self.trace = Some(trace);
    }

    /// Poison the mesh barrier: every port currently parked (or arriving
    /// later) bails out of its exchange with `poisoned` set. Called by a
    /// dying worker so its peers do not wait forever for its arrival.
    pub fn poison_mesh(&self) {
        self.core.barrier.poison();
    }

    /// Whether the mesh barrier has been poisoned (some worker died).
    pub fn mesh_poisoned(&self) -> bool {
        self.core.barrier.is_poisoned()
    }

    /// Detachable poison handle for this port's mesh: poisons the round
    /// barrier without borrowing the port, so a coordinator (or a worker's
    /// panic guard) can unblock parked peers from another thread.
    pub fn poisoner(&self) -> MeshPoisoner {
        MeshPoisoner(Arc::clone(&self.core))
    }

    /// Drive boundary exchange to quiescence, delivering envelopes
    /// directly to peer mailboxes. `first_out` is this shard's Phase-A
    /// outbox; corrections received along the way are applied to `state`
    /// and their follow-up envelopes forwarded in later rounds.
    ///
    /// Round protocol (identical on every port, which is what keeps the
    /// barrier deadlock-free):
    ///
    /// 1. **send** — group the staged outbox by owner shard, send one
    ///    batch per peer with traffic, add the envelope count to the
    ///    shared monotone counter;
    /// 2. **one barrier wait** — the last arriver (leader) copies the
    ///    shared counter into the round-snapshot slot *inside the
    ///    pre-release closure*: every send of the round is already counted
    ///    (its port has arrived), no port can be sending (none released),
    ///    and the release publishes the snapshot to every port. This is
    ///    the single-barrier quiescence rule that replaced the old
    ///    barrier/read/barrier sandwich;
    /// 3. if the snapshot did not advance, nothing was sent by anyone and
    ///    everything previously sent was already drained: **quiescent**.
    ///    Otherwise drain the own mailbox, apply
    ///    ([`ShardRepairState::exchange`]), and loop.
    ///
    /// A batch sent early in step 1 may be drained by a peer still in its
    /// *previous* round's step 3 — harmless, because the repaired fixed
    /// point is delivery-order independent and the counter tracks sends,
    /// not receipts (the accelerated round then just drains empty).
    ///
    /// If the mesh barrier is poisoned (a peer worker panicked), the
    /// session bails out with `poisoned` set instead of waiting for an
    /// arrival that will never come.
    pub fn exchange_to_quiescence(
        &mut self,
        state: &mut ShardRepairState,
        first_out: Vec<Envelope>,
        report: &mut ShardFlushReport,
    ) -> MeshExchangeReport {
        let mut mesh = MeshExchangeReport::default();
        let mut staged = first_out;
        loop {
            if self.core.barrier.is_poisoned() {
                mesh.poisoned = true;
                return mesh;
            }
            let mut by_peer: Vec<Vec<Envelope>> = vec![Vec::new(); self.peers.len()];
            for env in staged.drain(..) {
                let owner = state.owner_of(env.to);
                debug_assert_ne!(owner, self.shard, "boundary envelope addressed to self");
                by_peer[owner].push(env);
            }
            let mut sent_now = 0u64;
            for (peer, batch) in by_peer.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                sent_now += batch.len() as u64;
                mesh.batches_sent += 1;
                let delivered = self.peers[peer]
                    .as_ref()
                    .expect("no channel to self")
                    .send(batch);
                if delivered.is_err() {
                    // The peer's inbox is gone: its worker died. Poison the
                    // mesh so every surviving port bails out too, instead
                    // of deadlocking on an arrival that will never come.
                    self.core.barrier.poison();
                    mesh.poisoned = true;
                    return mesh;
                }
            }
            mesh.envelopes_sent += sent_now;
            if sent_now > 0 {
                self.core.sent.fetch_add(sent_now, Ordering::Release);
            }
            let bw_t0 = self
                .trace
                .as_ref()
                .filter(|t| t.enabled())
                .map(|t| t.now_ns());
            // Single barrier: the leader snapshots the sent counter in the
            // pre-release slot (all arrived, none released), and the
            // release's happens-before edge makes both the snapshot and
            // every round send (mpsc batch + counter add sequenced before
            // the sender's arrival) visible to every port.
            let core = &*self.core;
            let wait = core.barrier.wait_then(&mut self.sense, || {
                core.snapshot
                    .store(core.sent.load(Ordering::Acquire), Ordering::Relaxed);
            });
            if wait.poisoned {
                mesh.poisoned = true;
                return mesh;
            }
            let snapshot = core.snapshot.load(Ordering::Relaxed);
            mesh.barrier_wait += wait.total();
            mesh.barrier_arrive += wait.arrive;
            mesh.barrier_depart += wait.depart;
            if let (Some(t), Some(t0)) = (&self.trace, bw_t0) {
                let arrive_ns = wait.arrive.as_nanos() as u64;
                let depart_ns = wait.depart.as_nanos() as u64;
                // The total barrier_wait span, plus its two phases as
                // adjacent sub-spans (arrive then depart).
                t.record_span(
                    names::BARRIER_WAIT,
                    t0,
                    t.now_ns().saturating_sub(t0),
                    mesh.rounds,
                );
                t.record_span(names::BARRIER_ARRIVE, t0, arrive_ns, mesh.rounds);
                t.record_span(
                    names::BARRIER_DEPART,
                    t0 + arrive_ns,
                    depart_ns,
                    mesh.rounds,
                );
            }
            let round_sent = snapshot - self.last_snapshot;
            self.last_snapshot = snapshot;
            if round_sent == 0 {
                debug_assert!(
                    self.inbox.try_recv().is_err(),
                    "mesh quiescent with undelivered envelopes"
                );
                return mesh;
            }
            mesh.rounds += 1;
            let round_t0 = self
                .trace
                .as_ref()
                .filter(|t| t.enabled())
                .map(|t| t.now_ns());
            let mut inbound: Vec<Envelope> = Vec::new();
            while let Ok(batch) = self.inbox.try_recv() {
                inbound.extend(batch);
            }
            mesh.inbox_depths.push(inbound.len() as u64);
            let drained = inbound.len() as u64;
            if !inbound.is_empty() {
                report.absorb(&state.exchange(inbound, &mut staged));
            }
            if let (Some(t), Some(t0)) = (&self.trace, round_t0) {
                t.record_span(
                    names::EXCHANGE_ROUND,
                    t0,
                    t.now_ns().saturating_sub(t0),
                    drained,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::apply_correction;
    use crate::propagation::run_propagation;
    use crate::verify::check_consistency;
    use rslpa_graph::{DynamicGraph, EditBatch, HashPartitioner};

    /// Drive a set of shards over one applied batch until quiescence,
    /// mirroring what the serve coordinator does (including the per-flush
    /// slot-delta drain). Returns the flush report; the drained deltas
    /// are discarded here — `run_shards_streaming` keeps them.
    fn run_shards(
        shards: &mut [ShardRepairState],
        partitioner: &dyn Partitioner,
        applied: &rslpa_graph::AppliedBatch,
    ) -> ShardFlushReport {
        run_shards_streaming(shards, partitioner, applied).0
    }

    fn run_shards_streaming(
        shards: &mut [ShardRepairState],
        partitioner: &dyn Partitioner,
        applied: &rslpa_graph::AppliedBatch,
    ) -> (ShardFlushReport, Vec<SlotDelta>) {
        let per_shard = rslpa_graph::sharding::split_deltas(applied, partitioner);
        let mut total = ShardFlushReport::default();
        let mut outbox = Vec::new();
        for (shard, deltas) in shards.iter_mut().zip(&per_shard) {
            total.absorb(&shard.apply_deltas(deltas, &mut outbox));
        }
        while !outbox.is_empty() {
            let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); shards.len()];
            for env in outbox.drain(..) {
                inboxes[partitioner.assign(env.to)].push(env);
            }
            for (shard, inbox) in shards.iter_mut().zip(inboxes) {
                if !inbox.is_empty() {
                    total.absorb(&shard.exchange(inbox, &mut outbox));
                }
            }
        }
        // Drain the flush's slot-delta stream the way the serve
        // coordinator does (before any migration can happen). Shard
        // concatenation order is irrelevant to counter maintenance — one
        // vertex's deltas all come from its single owner shard.
        let mut deltas = Vec::new();
        for shard in shards.iter_mut() {
            deltas.extend(shard.take_slot_deltas());
        }
        (total, deltas)
    }

    fn assemble(shards: &[ShardRepairState], n: usize, t_max: usize, seed: u64) -> LabelState {
        let mut state = LabelState::new(n, t_max, seed);
        for shard in shards {
            shard.export_into(&mut state);
        }
        state
    }

    fn compare_states(a: &LabelState, b: &LabelState, n: usize, t_max: u32) {
        for v in 0..n as VertexId {
            assert_eq!(
                a.label_sequence(v),
                b.label_sequence(v),
                "labels differ at {v}"
            );
            for t in 1..=t_max {
                assert_eq!(a.pick(v, t), b.pick(v, t), "picks differ at ({v}, {t})");
                assert_eq!(a.epoch(v, t), b.epoch(v, t), "epochs differ at ({v}, {t})");
            }
        }
        assert_eq!(a.total_records(), b.total_records());
    }

    fn cube_graph() -> AdjacencyGraph {
        AdjacencyGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (0, 4),
                (2, 6),
            ],
        )
    }

    fn exercise(batch: EditBatch, seed: u64, parts: usize, pruned: bool) {
        let t_max = 10usize;
        let mut dg = DynamicGraph::new(cube_graph());
        let state0 = run_propagation(dg.graph(), t_max, seed);
        let applied = dg.apply(&batch).unwrap();

        let mut central = state0.clone();
        apply_correction(&mut central, dg.graph(), &applied, pruned);

        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
        let pre_batch = cube_graph(); // pre-batch adjacency
        let mut shards: Vec<ShardRepairState> = (0..parts)
            .map(|s| {
                let mut shard =
                    ShardRepairState::from_state(&state0, &pre_batch, s, Arc::clone(&partitioner));
                shard.set_value_pruned(pruned);
                shard
            })
            .collect();
        run_shards(&mut shards, partitioner.as_ref(), &applied);
        let sharded = assemble(&shards, 8, t_max, seed);
        check_consistency(&sharded, dg.graph()).unwrap();
        compare_states(&central, &sharded, 8, t_max as u32);
    }

    #[test]
    fn matches_centralized_on_deletion() {
        for seed in 0..5 {
            for parts in [1, 2, 4] {
                exercise(EditBatch::from_lists([], [(0, 1)]), seed, parts, false);
            }
        }
    }

    #[test]
    fn matches_centralized_on_insertion() {
        for seed in 0..5 {
            for parts in [1, 2, 4] {
                exercise(EditBatch::from_lists([(1, 5)], []), seed, parts, false);
            }
        }
    }

    #[test]
    fn matches_centralized_on_mixed_batch() {
        for seed in 0..5 {
            for parts in [1, 2, 4] {
                exercise(
                    EditBatch::from_lists([(1, 7), (3, 5)], [(0, 1), (5, 6)]),
                    seed,
                    parts,
                    false,
                );
            }
        }
    }

    #[test]
    fn matches_centralized_pruned_mode() {
        for seed in 0..5 {
            exercise(EditBatch::from_lists([(1, 7)], [(2, 3)]), seed, 3, true);
        }
    }

    #[test]
    fn multi_batch_continuity_across_shard_counts() {
        // Apply a sequence of batches; shard repair must stay bit-aligned
        // with the centralized state at every step, for every shard count.
        let t_max = 8usize;
        let seed = 5u64;
        let batches = [
            EditBatch::from_lists([(0, 2)], [(3, 0)]),
            EditBatch::from_lists([(1, 3)], [(0, 2)]),
            EditBatch::from_lists([(0, 6), (3, 7)], [(4, 5)]),
        ];
        for parts in [1, 2, 4] {
            let mut dg_c = DynamicGraph::new(cube_graph());
            let mut central = run_propagation(dg_c.graph(), t_max, seed);
            let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
            let mut shards: Vec<ShardRepairState> = (0..parts)
                .map(|s| {
                    ShardRepairState::from_state(
                        &central,
                        dg_c.graph(),
                        s,
                        Arc::clone(&partitioner),
                    )
                })
                .collect();
            for batch in &batches {
                let applied = dg_c.apply(batch).unwrap();
                apply_correction(&mut central, dg_c.graph(), &applied, false);
                run_shards(&mut shards, partitioner.as_ref(), &applied);
                let sharded = assemble(&shards, 8, t_max, seed);
                compare_states(&central, &sharded, 8, t_max as u32);
            }
        }
    }

    #[test]
    fn migration_between_batches_preserves_bit_equality() {
        // Repartition mid-stream (extract + adopt + new ownership map) and
        // keep repairing: the final state must still match the
        // centralized reference bit for bit.
        let t_max = 8usize;
        let seed = 7u64;
        let parts = 3usize;
        let mut dg_c = DynamicGraph::new(cube_graph());
        let mut central = run_propagation(dg_c.graph(), t_max, seed);
        let p_old: Arc<dyn Partitioner> = Arc::new(HashPartitioner::with_seed(parts, 1));
        let mut shards: Vec<ShardRepairState> = (0..parts)
            .map(|s| ShardRepairState::from_state(&central, dg_c.graph(), s, Arc::clone(&p_old)))
            .collect();

        let batch1 = EditBatch::from_lists([(0, 2)], [(6, 7)]);
        let applied = dg_c.apply(&batch1).unwrap();
        apply_correction(&mut central, dg_c.graph(), &applied, false);
        run_shards(&mut shards, p_old.as_ref(), &applied);

        // Migrate to a different ownership map, the way the coordinator
        // does between flushes.
        let p_new: Arc<dyn Partitioner> = Arc::new(HashPartitioner::with_seed(parts, 99));
        let mut in_flight: Vec<Vec<(VertexId, VertexRowData)>> = vec![Vec::new(); parts];
        for shard in shards.iter_mut() {
            let leaving: Vec<VertexId> = (0..8u32)
                .filter(|&v| p_old.assign(v) == shard.shard() && p_new.assign(v) != shard.shard())
                .collect();
            for (v, row) in shard.extract_rows(&leaving) {
                in_flight[p_new.assign(v)].push((v, row));
            }
        }
        for (shard, rows) in shards.iter_mut().zip(in_flight) {
            shard.set_partitioner(Arc::clone(&p_new));
            shard.adopt_rows(rows);
        }

        let batch2 = EditBatch::from_lists([(1, 6), (5, 7)], [(0, 2)]);
        let applied = dg_c.apply(&batch2).unwrap();
        apply_correction(&mut central, dg_c.graph(), &applied, false);
        run_shards(&mut shards, p_new.as_ref(), &applied);
        let sharded = assemble(&shards, 8, t_max, seed);
        compare_states(&central, &sharded, 8, t_max as u32);
    }

    #[test]
    fn fresh_vertex_attaches_identically() {
        // Vertex 8 does not exist at propagation time; the shard creates
        // its row lazily and must land exactly where the centralized
        // grow-then-repair path lands.
        let t_max = 9usize;
        let seed = 11u64;
        let mut dg = DynamicGraph::new(cube_graph());
        let state0 = run_propagation(dg.graph(), t_max, seed);
        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(3));
        let mut shards: Vec<ShardRepairState> = (0..3)
            .map(|s| ShardRepairState::from_state(&state0, dg.graph(), s, Arc::clone(&partitioner)))
            .collect();

        let mut central = state0.clone();
        dg.ensure_vertices(9);
        central.grow(9);
        let applied = dg
            .apply(&EditBatch::from_lists([(8, 0), (8, 5)], []))
            .unwrap();
        apply_correction(&mut central, dg.graph(), &applied, false);
        run_shards(&mut shards, partitioner.as_ref(), &applied);
        let sharded = assemble(&shards, 9, t_max, seed);
        compare_states(&central, &sharded, 9, t_max as u32);
    }

    #[test]
    fn drain_dirty_reports_changed_sequences_once() {
        let t_max = 8usize;
        let mut dg = DynamicGraph::new(cube_graph());
        let state0 = run_propagation(dg.graph(), t_max, 3);
        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(2));
        let mut shards: Vec<ShardRepairState> = (0..2)
            .map(|s| ShardRepairState::from_state(&state0, dg.graph(), s, Arc::clone(&partitioner)))
            .collect();
        let applied = dg.apply(&EditBatch::from_lists([], [(0, 1)])).unwrap();
        run_shards(&mut shards, partitioner.as_ref(), &applied);
        let assembled = assemble(&shards, 8, t_max, 3);
        let mut reported: Vec<VertexId> = Vec::new();
        for shard in &mut shards {
            for (v, labels) in shard.drain_dirty() {
                assert_eq!(labels, assembled.label_sequence(v), "sequence for {v}");
                reported.push(v);
            }
        }
        // Every vertex whose sequence differs from the pre-batch state
        // must have been reported dirty.
        for v in 0..8u32 {
            if state0.label_sequence(v) != assembled.label_sequence(v) {
                assert!(reported.contains(&v), "dirty vertex {v} not reported");
            }
        }
        // A second drain is empty.
        for shard in &mut shards {
            assert!(shard.drain_dirty().is_empty());
        }
    }

    #[test]
    fn sharded_slot_deltas_match_centralized_net_movement() {
        // The coordinator feeds shard-emitted deltas to a central counter
        // store; their compacted net effect must equal the centralized
        // engine's, whatever the shard count or message interleaving.
        use rslpa_graph::compact_slot_deltas;
        for seed in 0..4u64 {
            for parts in [1usize, 2, 4] {
                let t_max = 10usize;
                let mut dg = DynamicGraph::new(cube_graph());
                let state0 = run_propagation(dg.graph(), t_max, seed);
                let applied = dg
                    .apply(&EditBatch::from_lists([(1, 7), (3, 5)], [(0, 1), (5, 6)]))
                    .unwrap();

                let mut central = state0.clone();
                let mut dirty = rslpa_graph::FxHashSet::default();
                let mut central_deltas = Vec::new();
                crate::incremental::apply_correction_streaming(
                    &mut central,
                    dg.graph(),
                    &applied,
                    false,
                    &mut dirty,
                    &mut central_deltas,
                );

                let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
                let pre_batch = cube_graph();
                let mut shards: Vec<ShardRepairState> = (0..parts)
                    .map(|s| {
                        ShardRepairState::from_state(
                            &state0,
                            &pre_batch,
                            s,
                            Arc::clone(&partitioner),
                        )
                    })
                    .collect();
                let (_, sharded_deltas) =
                    run_shards_streaming(&mut shards, partitioner.as_ref(), &applied);

                let norm = |deltas: &[SlotDelta]| {
                    let mut net = compact_slot_deltas(deltas);
                    net.sort_unstable_by_key(|d| (d.v, d.slot));
                    net
                };
                assert_eq!(
                    norm(&central_deltas),
                    norm(&sharded_deltas),
                    "net slot movement diverged at {parts} shards (seed {seed})"
                );
            }
        }
    }

    /// Drive one applied batch through real worker threads exchanging
    /// over a [`MailboxPort`] mesh (no coordinator in the loop).
    fn run_shards_mesh(
        shards: Vec<ShardRepairState>,
        applied: &rslpa_graph::AppliedBatch,
        partitioner: &dyn Partitioner,
    ) -> (Vec<ShardRepairState>, ShardFlushReport, Vec<SlotDelta>) {
        let per_shard = rslpa_graph::sharding::split_deltas(applied, partitioner);
        let ports = build_mesh(shards.len());
        let mut joined: Vec<(usize, ShardRepairState, ShardFlushReport, Vec<SlotDelta>)> =
            std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .zip(ports)
                    .zip(&per_shard)
                    .map(|((mut shard, mut port), deltas)| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let mut report = shard.apply_deltas(deltas, &mut out);
                            port.exchange_to_quiescence(&mut shard, out, &mut report);
                            let deltas = shard.take_slot_deltas();
                            (port.shard(), shard, report, deltas)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("mesh worker"))
                    .collect()
            });
        joined.sort_unstable_by_key(|(idx, ..)| *idx);
        let mut total = ShardFlushReport::default();
        let mut all_deltas = Vec::new();
        let shards = joined
            .into_iter()
            .map(|(_, shard, report, deltas)| {
                total.absorb(&report);
                all_deltas.extend(deltas);
                shard
            })
            .collect();
        (shards, total, all_deltas)
    }

    #[test]
    fn mesh_exchange_matches_centralized_and_coordinator_paths() {
        for seed in 0..5u64 {
            for parts in [1usize, 2, 4] {
                let t_max = 10usize;
                let batch = EditBatch::from_lists([(1, 7), (3, 5)], [(0, 1), (5, 6)]);
                let mut dg = DynamicGraph::new(cube_graph());
                let state0 = run_propagation(dg.graph(), t_max, seed);
                let applied = dg.apply(&batch).unwrap();

                let mut central = state0.clone();
                apply_correction(&mut central, dg.graph(), &applied, false);

                let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
                let pre_batch = cube_graph();
                let shards: Vec<ShardRepairState> = (0..parts)
                    .map(|s| {
                        ShardRepairState::from_state(
                            &state0,
                            &pre_batch,
                            s,
                            Arc::clone(&partitioner),
                        )
                    })
                    .collect();
                let (shards, report, _) = run_shards_mesh(shards, &applied, partitioner.as_ref());
                let meshed = assemble(&shards, 8, t_max, seed);
                check_consistency(&meshed, dg.graph()).unwrap();
                compare_states(&central, &meshed, 8, t_max as u32);
                if parts == 1 {
                    assert_eq!(report.boundary_msgs, 0);
                }
            }
        }
    }

    #[test]
    fn mesh_survives_consecutive_flushes_without_reset() {
        // The monotone sent counter is never reset; a second flush over
        // the same mesh must terminate and stay bit-identical.
        let t_max = 8usize;
        let seed = 3u64;
        let parts = 3usize;
        let batches = [
            EditBatch::from_lists([(0, 2)], [(3, 0)]),
            EditBatch::from_lists([(1, 3)], [(0, 2)]),
        ];
        let mut dg = DynamicGraph::new(cube_graph());
        let mut central = run_propagation(dg.graph(), t_max, seed);
        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
        let mut shards: Vec<ShardRepairState> = (0..parts)
            .map(|s| {
                ShardRepairState::from_state(&central, dg.graph(), s, Arc::clone(&partitioner))
            })
            .collect();
        // One mesh, reused across flushes the way the serve engine does.
        let mut ports = build_mesh(parts);
        for batch in &batches {
            let applied = dg.apply(batch).unwrap();
            apply_correction(&mut central, dg.graph(), &applied, false);
            let per_shard = rslpa_graph::sharding::split_deltas(&applied, partitioner.as_ref());
            std::thread::scope(|s| {
                for ((shard, port), deltas) in
                    shards.iter_mut().zip(ports.iter_mut()).zip(&per_shard)
                {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut report = shard.apply_deltas(deltas, &mut out);
                        port.exchange_to_quiescence(shard, out, &mut report);
                        shard.take_slot_deltas();
                    });
                }
            });
            let meshed = assemble(&shards, 8, t_max, seed);
            compare_states(&central, &meshed, 8, t_max as u32);
        }
    }

    /// A 10-spoke hub (vertex 0) with a ring through the spokes — degree
    /// 10 at the hub, ≥ 3 elsewhere, so a small cap makes the hub (and
    /// only the hub) defer.
    fn hub_graph() -> AdjacencyGraph {
        let mut edges: Vec<(VertexId, VertexId)> = (1..=10).map(|i| (0, i)).collect();
        edges.extend((1..10).map(|i| (i, i + 1)));
        AdjacencyGraph::from_edges(11, edges)
    }

    /// The centralized damped reference: per-batch states for a script.
    fn central_damped_script(
        batches: &[EditBatch],
        seed: u64,
        t_max: usize,
        cfg: DampingConfig,
    ) -> Vec<LabelState> {
        let mut dg = DynamicGraph::new(hub_graph());
        let mut state = run_propagation(dg.graph(), t_max, seed);
        let mut damper = crate::incremental::CascadeDamper::new(cfg);
        batches
            .iter()
            .map(|batch| {
                let applied = dg.apply(batch).unwrap();
                let mut dirty = FxHashSet::default();
                let mut deltas = Vec::new();
                crate::incremental::apply_correction_damped(
                    &mut state,
                    dg.graph(),
                    &applied,
                    false,
                    Some(&mut damper),
                    &mut dirty,
                    &mut deltas,
                );
                state.clone()
            })
            .collect()
    }

    fn damped_script() -> Vec<EditBatch> {
        vec![
            EditBatch::from_lists([], [(0, 3)]),
            EditBatch::from_lists([(0, 3), (2, 9)], [(0, 7)]),
            EditBatch::from_lists([(0, 7)], [(1, 2)]),
            // Pure-release flushes: pending hub slots drain on a budget.
            EditBatch::new(),
            EditBatch::new(),
            EditBatch::new(),
        ]
    }

    #[test]
    fn damped_repair_matches_centralized_across_shard_counts() {
        // The damped fixed point after every flush — including
        // budget-limited partial releases mid-drain — must be a pure
        // function of the batch sequence, whatever the shard count.
        let cfg = DampingConfig {
            degree_cap: 4,
            flush_budget: 3,
        };
        let t_max = 10usize;
        let batches = damped_script();
        for seed in 0..4u64 {
            let reference = central_damped_script(&batches, seed, t_max, cfg);
            for parts in [1usize, 2, 4, 8] {
                let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
                let state0 = run_propagation(&hub_graph(), t_max, seed);
                let mut shards: Vec<ShardRepairState> = (0..parts)
                    .map(|s| {
                        let mut sh = ShardRepairState::from_state(
                            &state0,
                            &hub_graph(),
                            s,
                            Arc::clone(&partitioner),
                        );
                        sh.set_damping(Some(cfg));
                        sh
                    })
                    .collect();
                let mut dg = DynamicGraph::new(hub_graph());
                let mut deferred = 0usize;
                for (i, batch) in batches.iter().enumerate() {
                    let applied = dg.apply(batch).unwrap();
                    let report = run_shards(&mut shards, partitioner.as_ref(), &applied);
                    deferred += report.damped_deferrals;
                    let sharded = assemble(&shards, 11, t_max, seed);
                    compare_states(&reference[i], &sharded, 11, t_max as u32);
                }
                assert!(
                    deferred > 0,
                    "hub degree 10 over cap 4 must defer (seed {seed}, {parts} shards)"
                );
            }
        }
    }

    #[test]
    fn damped_repair_matches_centralized_over_the_mesh() {
        let cfg = DampingConfig {
            degree_cap: 4,
            flush_budget: 3,
        };
        let t_max = 10usize;
        let batches = damped_script();
        for seed in 0..3u64 {
            let reference = central_damped_script(&batches, seed, t_max, cfg);
            for parts in [2usize, 4] {
                let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
                let state0 = run_propagation(&hub_graph(), t_max, seed);
                let mut shards: Vec<ShardRepairState> = (0..parts)
                    .map(|s| {
                        let mut sh = ShardRepairState::from_state(
                            &state0,
                            &hub_graph(),
                            s,
                            Arc::clone(&partitioner),
                        );
                        sh.set_damping(Some(cfg));
                        sh
                    })
                    .collect();
                let mut dg = DynamicGraph::new(hub_graph());
                for (i, batch) in batches.iter().enumerate() {
                    let applied = dg.apply(batch).unwrap();
                    let (back, _, _) = run_shards_mesh(shards, &applied, partitioner.as_ref());
                    shards = back;
                    let meshed = assemble(&shards, 11, t_max, seed);
                    compare_states(&reference[i], &meshed, 11, t_max as u32);
                }
            }
        }
    }

    #[test]
    fn pending_rows_survive_migration_bit_exactly() {
        // Repartition mid-drain — while hub slots are still parked — and
        // keep flushing: parked entries must travel with their rows.
        let cfg = DampingConfig {
            degree_cap: 4,
            flush_budget: 2,
        };
        let t_max = 10usize;
        let seed = 9u64;
        let parts = 3usize;
        let batches = damped_script();
        let reference = central_damped_script(&batches, seed, t_max, cfg);

        let p_old: Arc<dyn Partitioner> = Arc::new(HashPartitioner::with_seed(parts, 1));
        let state0 = run_propagation(&hub_graph(), t_max, seed);
        let mut shards: Vec<ShardRepairState> = (0..parts)
            .map(|s| {
                let mut sh =
                    ShardRepairState::from_state(&state0, &hub_graph(), s, Arc::clone(&p_old));
                sh.set_damping(Some(cfg));
                sh
            })
            .collect();
        let mut dg = DynamicGraph::new(hub_graph());
        for (i, batch) in batches.iter().enumerate() {
            let applied = dg.apply(batch).unwrap();
            run_shards(&mut shards, p_old.as_ref(), &applied);
            compare_states(
                &reference[i],
                &assemble(&shards, 11, t_max, seed),
                11,
                t_max as u32,
            );
            if i == 1 {
                // Mid-drain migration: the hub has parked slots here.
                assert!(
                    shards.iter().any(|s| s.has_pending()),
                    "script must leave pending work at batch 1"
                );
                let p_new: Arc<dyn Partitioner> = Arc::new(HashPartitioner::with_seed(parts, 99));
                let mut in_flight: Vec<Vec<(VertexId, VertexRowData)>> = vec![Vec::new(); parts];
                for shard in shards.iter_mut() {
                    let leaving: Vec<VertexId> = (0..11u32)
                        .filter(|&v| {
                            p_old.assign(v) == shard.shard() && p_new.assign(v) != shard.shard()
                        })
                        .collect();
                    for (v, row) in shard.extract_rows(&leaving) {
                        in_flight[p_new.assign(v)].push((v, row));
                    }
                }
                for (shard, rows) in shards.iter_mut().zip(in_flight) {
                    shard.set_partitioner(Arc::clone(&p_new));
                    shard.adopt_rows(rows);
                }
                // Later flushes run under the new map.
                return pending_migration_tail(
                    shards,
                    p_new,
                    dg,
                    &batches[2..],
                    &reference[2..],
                    t_max,
                    seed,
                );
            }
        }
    }

    /// Continuation of [`pending_rows_survive_migration_bit_exactly`]
    /// after the mid-drain repartition.
    fn pending_migration_tail(
        mut shards: Vec<ShardRepairState>,
        partitioner: Arc<dyn Partitioner>,
        mut dg: DynamicGraph,
        batches: &[EditBatch],
        reference: &[LabelState],
        t_max: usize,
        seed: u64,
    ) {
        for (i, batch) in batches.iter().enumerate() {
            let applied = dg.apply(batch).unwrap();
            run_shards(&mut shards, partitioner.as_ref(), &applied);
            compare_states(
                &reference[i],
                &assemble(&shards, 11, t_max, seed),
                11,
                t_max as u32,
            );
        }
    }

    #[test]
    fn damped_cap_crossing_churn_matches_centralized() {
        // Drive the hub over and back under the cap repeatedly (burst /
        // calm cycles) with random peripheral churn mixed in: the
        // sharded damped state must track the centralized damped
        // reference bit for bit at every flush, including the unmute
        // release windows. (Regression: full-scale skew_burst first
        // diverged at the window where a burst vertex dropped back
        // under the cap.)
        let cfg = DampingConfig {
            degree_cap: 4,
            flush_budget: 2,
        };
        let t_max = 8usize;
        for seed in 0..6u64 {
            // Script the windows against a shadow graph.
            let mut rng_state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut rng = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut shadow = DynamicGraph::new(hub_graph());
            let mut batches = Vec::new();
            for w in 0..12usize {
                let mut ins: Vec<(VertexId, VertexId)> = Vec::new();
                let mut del: Vec<(VertexId, VertexId)> = Vec::new();
                let g = shadow.graph();
                if w % 4 < 2 {
                    // Burst: wire the hub to every current non-neighbor.
                    for u in 1..11u32 {
                        if g.neighbors(0).binary_search(&u).is_err() {
                            ins.push((0, u));
                        }
                    }
                } else {
                    // Calm: unwire every other hub edge.
                    for (i, &u) in g.neighbors(0).iter().enumerate() {
                        if i % 2 == w % 2 {
                            del.push((0, u));
                        }
                    }
                }
                // Peripheral churn: toggle one random non-hub pair.
                let a = 1 + (rng() % 10) as u32;
                let b = 1 + (rng() % 10) as u32;
                if a != b {
                    let (a, b) = (a.min(b), a.max(b));
                    if g.neighbors(a).binary_search(&b).is_ok() {
                        del.push((a, b));
                    } else {
                        ins.push((a, b));
                    }
                }
                let batch = EditBatch::from_lists(ins, del);
                shadow.apply(&batch).unwrap();
                batches.push(batch);
            }
            let reference = central_damped_script(&batches, seed, t_max, cfg);
            for parts in [2usize, 3, 4] {
                let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(parts));
                let state0 = run_propagation(&hub_graph(), t_max, seed);
                let mut shards: Vec<ShardRepairState> = (0..parts)
                    .map(|s| {
                        let mut sh = ShardRepairState::from_state(
                            &state0,
                            &hub_graph(),
                            s,
                            Arc::clone(&partitioner),
                        );
                        sh.set_damping(Some(cfg));
                        sh
                    })
                    .collect();
                let mut dg = DynamicGraph::new(hub_graph());
                for (i, batch) in batches.iter().enumerate() {
                    let applied = dg.apply(batch).unwrap();
                    run_shards(&mut shards, partitioner.as_ref(), &applied);
                    let sharded = assemble(&shards, 11, t_max, seed);
                    compare_states(&reference[i], &sharded, 11, t_max as u32);
                }
            }
        }
    }

    #[test]
    fn boundary_message_count_is_zero_for_single_shard() {
        let mut dg = DynamicGraph::new(cube_graph());
        let state0 = run_propagation(dg.graph(), 8, 1);
        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(1));
        let mut shards = vec![ShardRepairState::from_state(
            &state0,
            dg.graph(),
            0,
            Arc::clone(&partitioner),
        )];
        let applied = dg.apply(&EditBatch::from_lists([(1, 6)], [])).unwrap();
        let report = run_shards(&mut shards, partitioner.as_ref(), &applied);
        assert_eq!(report.boundary_msgs, 0);
        assert!(report.repicks > 0 || report.coins > 0);
    }
}
