//! Value-generation strategies: ranges, tuples, `prop_map`, `Just`.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the per-case RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the per-case stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64) - (*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start() + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
