//! Table I and Figures 7a–7f: accuracy on the LFR benchmark.

use rslpa_baselines::{run_slpa, SlpaConfig};
use rslpa_core::{postprocess, run_propagation};
use rslpa_gen::lfr::LfrParams;
use rslpa_metrics::overlapping_nmi;

use crate::report::{f3, Table};
use crate::scale::Scale;

/// NMI of one rSLPA run against ground truth.
pub fn rslpa_nmi(params: &LfrParams, t_max: usize, seed: u64) -> f64 {
    let instance = params.generate().expect("LFR generation");
    let n = instance.graph.num_vertices();
    let state = run_propagation(&instance.graph, t_max, seed);
    let cover = postprocess(&instance.graph, &state, None).cover;
    overlapping_nmi(&cover, &instance.ground_truth, n)
}

/// NMI of one SLPA run against ground truth (τ ≈ 1/om per the paper).
pub fn slpa_nmi(params: &LfrParams, t_max: usize, seed: u64) -> f64 {
    let instance = params.generate().expect("LFR generation");
    let n = instance.graph.num_vertices();
    let result = run_slpa(
        &instance.graph,
        &SlpaConfig {
            iterations: t_max,
            threshold: 0.2,
            seed,
        },
    );
    overlapping_nmi(&result.cover, &instance.ground_truth, n)
}

fn avg(runs: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    (0..runs).map(&mut f).sum::<f64>() / runs as f64
}

/// Table I: parameter glossary + achieved statistics at the defaults.
pub fn table1(scale: &Scale) {
    let mut glossary = Table::new(
        "Table I — LFR parameters (defaults in parentheses)",
        &["parameter", "description", "default"],
    );
    glossary.row(vec![
        "N".into(),
        "number of vertices".into(),
        scale.lfr_n.to_string(),
    ]);
    glossary.row(vec![
        "k".into(),
        "average degree".into(),
        format!("{}", scale.lfr_k),
    ]);
    glossary.row(vec![
        "maxk".into(),
        "max degree".into(),
        scale.lfr_maxk.to_string(),
    ]);
    glossary.row(vec!["mu".into(), "mixing parameter".into(), "0.1".into()]);
    glossary.row(vec![
        "on".into(),
        "overlapping vertices".into(),
        "0.1 N".into(),
    ]);
    glossary.row(vec![
        "om".into(),
        "memberships of overlapping".into(),
        "2".into(),
    ]);
    glossary.print();

    let params = scale.lfr(scale.lfr_n, 42);
    let instance = params.generate().expect("LFR generation");
    let stats = instance.stats();
    let mut achieved = Table::new(
        "Table I (cont.) — achieved statistics of the default instance",
        &["statistic", "value"],
    );
    achieved.row(vec!["vertices".into(), stats.n.to_string()]);
    achieved.row(vec!["avg degree".into(), f3(stats.avg_degree)]);
    achieved.row(vec!["max degree".into(), stats.max_degree.to_string()]);
    achieved.row(vec!["achieved mixing".into(), f3(stats.mixing)]);
    achieved.row(vec![
        "communities".into(),
        stats.num_communities.to_string(),
    ]);
    achieved.row(vec![
        "community sizes".into(),
        format!(
            "{}..{}",
            stats.community_size_range.0, stats.community_size_range.1
        ),
    ]);
    achieved.row(vec![
        "overlapping vertices".into(),
        stats.overlapping_vertices.to_string(),
    ]);
    achieved.print();
}

/// Fig. 7a: rSLPA NMI vs iteration count T, for several N.
pub fn fig7a(scale: &Scale) {
    let ns = [
        scale.lfr_n_sweep[0],
        scale.lfr_n,
        *scale.lfr_n_sweep.last().unwrap(),
    ];
    let mut headers: Vec<String> = vec!["T".into()];
    headers.extend(ns.iter().map(|n| format!("N={n}")));
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 7a — rSLPA NMI vs iterations (convergence)", &href);
    for &t in &scale.t_sweep {
        let mut row = vec![t.to_string()];
        for &n in &ns {
            let score = avg(scale.runs, |seed| {
                rslpa_nmi(&scale.lfr(n, 100 + seed), t, seed)
            });
            row.push(f3(score));
        }
        table.row(row);
    }
    table.print();
    println!(
        "expected shape: stable for T >= {} (paper: T >= 200).\n",
        scale.t_rslpa
    );
}

/// Shared driver for Figs. 7b–7f: sweep one LFR parameter, compare both
/// algorithms.
fn sweep(title: &str, xlabel: &str, scale: &Scale, points: Vec<(String, LfrParams)>) {
    let mut table = Table::new(title, &[xlabel, "SLPA", "rSLPA"]);
    for (x, params) in points {
        let s = avg(scale.runs, |seed| {
            slpa_nmi(&params, scale.t_slpa, 300 + seed)
        });
        let r = avg(scale.runs, |seed| {
            rslpa_nmi(&params, scale.t_rslpa, 600 + seed)
        });
        table.row(vec![x, f3(s), f3(r)]);
    }
    table.print();
}

/// Fig. 7b: NMI vs N.
pub fn fig7b(scale: &Scale) {
    let points = scale
        .lfr_n_sweep
        .iter()
        .map(|&n| (n.to_string(), scale.lfr(n, 7)))
        .collect();
    sweep("Fig. 7b — NMI vs graph size N", "N", scale, points);
    println!("expected shape: both high and stable across N.\n");
}

/// Fig. 7c: NMI vs average degree k.
pub fn fig7c(scale: &Scale) {
    let ks: Vec<f64> = if scale.lfr_maxk >= 100 {
        vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]
    } else {
        vec![8.0, 14.0, 20.0, 26.0, 32.0, 40.0]
    };
    let points = ks
        .iter()
        .map(|&k| {
            let mut p = scale.lfr(scale.lfr_n, 11);
            p.avg_degree = k;
            (format!("{k}"), p)
        })
        .collect();
    sweep("Fig. 7c — NMI vs average degree k", "k", scale, points);
    println!("expected shape: grows with k, flat once dense enough.\n");
}

/// Fig. 7d: NMI vs mixing µ.
pub fn fig7d(scale: &Scale) {
    let points = [0.10, 0.15, 0.20, 0.25, 0.30]
        .iter()
        .map(|&mu| {
            let mut p = scale.lfr(scale.lfr_n, 13);
            p.mixing = mu;
            (format!("{mu:.2}"), p)
        })
        .collect();
    sweep("Fig. 7d — NMI vs mixing parameter mu", "mu", scale, points);
    println!("expected shape: SLPA ~flat; rSLPA high but degrading slowly.\n");
}

/// Fig. 7e: NMI vs memberships om.
pub fn fig7e(scale: &Scale) {
    let points = [2usize, 3, 4, 5]
        .iter()
        .map(|&om| {
            let mut p = scale.lfr(scale.lfr_n, 17);
            p.memberships = om;
            (om.to_string(), p)
        })
        .collect();
    sweep("Fig. 7e — NMI vs memberships om", "om", scale, points);
    println!("expected shape: both decline; rSLPA ahead for om >= 3.\n");
}

/// Fig. 7f: NMI vs overlapping vertices on.
pub fn fig7f(scale: &Scale) {
    let points = [0.10, 0.15, 0.20, 0.25, 0.30]
        .iter()
        .map(|&frac| {
            let mut p = scale.lfr(scale.lfr_n, 19);
            p.overlapping_vertices = (frac * scale.lfr_n as f64) as usize;
            (format!("{:.2}N", frac), p)
        })
        .collect();
    sweep(
        "Fig. 7f — NMI vs overlapping vertices on",
        "on",
        scale,
        points,
    );
    println!("expected shape: both decline as boundaries blur.\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-scale smoke: both algorithms beat a random baseline on LFR.
    #[test]
    fn nmi_helpers_produce_sane_scores() {
        let scale = Scale::quick();
        let params = scale.lfr(400, 5);
        let r = rslpa_nmi(&params, 60, 1);
        let s = slpa_nmi(&params, 40, 1);
        assert!(r > 0.4, "rSLPA NMI {r}");
        assert!(s > 0.4, "SLPA NMI {s}");
    }
}
