//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate provides the small slice of proptest's API that the
//! workspace's property tests use: range and tuple strategies, `prop_map`,
//! `collection::vec`, the `proptest!` macro, `ProptestConfig::with_cases`,
//! `TestCaseError`, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * case generation is **deterministic** — values are derived from a
//!   SplitMix64 counter keyed by `(test name, case index)`, so failures are
//!   reproducible across runs and machines without a persistence file;
//! * there is **no shrinking** — a failing case reports the case index and
//!   panics. For the small value domains used here (graphs over ~12
//!   vertices) raw counterexamples are already readable.
//!
//! Swapping the real crate back in requires only restoring the registry
//! dependency; no test source changes.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to bring in.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Assert two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {} of {} failed: {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
