//! Web-scale graph simulators.
//!
//! The paper's real-world dataset is the `eu-2015-tpd` crawl (6.65M pages,
//! 170M hyperlinks; Table II), distributed in WebGraph/LLP compressed form
//! we cannot ship. We substitute generators that reproduce the properties
//! the evaluation actually depends on — heavy-tailed degrees and local
//! clustering at tunable scale:
//!
//! * [`rmat`] — the recursive-matrix generator (Chakrabarti et al., SDM'04)
//!   with the standard web-graph corner weights; emits a *directed
//!   multigraph* which is then run through the paper's own preparation
//!   pipeline (symmetrize, dedupe, drop self-loops).
//! * [`barabasi_albert`] — preferential attachment, a second heavy-tailed
//!   model for cross-checking generator sensitivity.

use rslpa_graph::rng::DetRng;
use rslpa_graph::{AdjacencyGraph, GraphBuilder, VertexId};

/// R-MAT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Directed edge samples to draw (before cleaning).
    pub edges: usize,
    /// Corner probabilities; must sum to 1. Standard web-graph values:
    /// a = 0.57, b = 0.19, c = 0.19, d = 0.05.
    pub a: f64,
    /// See `a`.
    pub b: f64,
    /// See `a`.
    pub c: f64,
    /// See `a`.
    pub d: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatParams {
    /// Standard web-graph corner weights at the given scale, sized for the
    /// paper's average degree (~25.6): `edges ≈ 12.8 · 2^scale` directed
    /// samples, which after symmetrize/dedupe lands near that average.
    pub fn web(scale: u32, seed: u64) -> Self {
        let n = 1usize << scale;
        Self {
            scale,
            edges: n * 13,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed,
        }
    }
}

/// Generate an R-MAT graph, cleaned into a binary graph via the paper's
/// preparation pipeline.
pub fn rmat(params: &RmatParams) -> AdjacencyGraph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "corner probabilities must sum to 1, got {sum}"
    );
    let n = 1usize << params.scale;
    let mut rng = DetRng::new(params.seed);
    let mut builder = GraphBuilder::with_capacity(params.edges);
    for _ in 0..params.edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _level in 0..params.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.unit_f64();
            if r < params.a {
                // top-left: no bits set
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(u as VertexId, v as VertexId);
    }
    builder.build_with_vertices(n)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> AdjacencyGraph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut g = AdjacencyGraph::new(n);
    let mut rng = DetRng::new(seed);
    // Repeated-endpoints list: picking a uniform element is degree-
    // proportional sampling (the standard BA implementation trick).
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 vertices.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            g.insert_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let v = v as VertexId;
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m {
            let &target = rng.pick(&endpoints);
            guard += 1;
            if target != v && g.insert_edge(v, target) {
                endpoints.push(v);
                endpoints.push(target);
                attached += 1;
            }
            assert!(guard < 100 * m + 1000, "preferential attachment stuck");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_heavy_tail() {
        let g = rmat(&RmatParams::web(12, 1)); // 4096 vertices
        assert_eq!(g.num_vertices(), 4096);
        assert!(g.num_edges() > 10_000);
        // Web graphs: max degree far above average.
        assert!(
            (g.max_degree() as f64) > 8.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(&RmatParams::web(10, 7));
        let b = rmat(&RmatParams::web(10, 7));
        assert_eq!(a, b);
        let c = rmat(&RmatParams::web(10, 8));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_corners() {
        let _ = rmat(&RmatParams {
            a: 0.9,
            ..RmatParams::web(8, 1)
        });
    }

    #[test]
    fn ba_degree_and_size() {
        let g = barabasi_albert(2000, 4, 3);
        assert_eq!(g.num_vertices(), 2000);
        // Each of the n-m-1 arrivals adds m edges, plus the seed clique.
        let expected = (2000 - 5) * 4 + 10;
        assert_eq!(g.num_edges(), expected);
        assert!(
            g.max_degree() > 40,
            "hubs expected, max = {}",
            g.max_degree()
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn ba_is_connected() {
        let g = barabasi_albert(500, 2, 9);
        let labels = rslpa_graph::connected_components(500, g.edges());
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn ba_deterministic_in_seed() {
        assert_eq!(barabasi_albert(300, 3, 5), barabasi_albert(300, 3, 5));
        assert_ne!(barabasi_albert(300, 3, 5), barabasi_albert(300, 3, 6));
    }
}
