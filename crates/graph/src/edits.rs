//! Edit batches: the unit of graph change in the dynamic setting.
//!
//! The paper's incremental algorithm consumes "a batch of edge insertion and
//! deletion operations" (§I) and assumes deleted edges exist and inserted
//! edges do not (§IV premise: deletions are drawn from existing edges,
//! insertions from non-existing ones). [`EditBatch::validate`] enforces
//! exactly that contract so that downstream state repair can trust its
//! category analysis.

use crate::{AdjacencyGraph, VertexId};

/// Canonicalize an undirected edge as `(min, max)`.
#[inline]
pub fn canonical(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// A batch of undirected edge insertions and deletions.
///
/// Batches are kept canonical: edges stored as `(min, max)`, sorted,
/// deduplicated, and with no edge appearing in both lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditBatch {
    insertions: Vec<(VertexId, VertexId)>,
    deletions: Vec<(VertexId, VertexId)>,
}

/// Why a batch failed validation against a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// An insertion references a vertex outside `0..n`.
    VertexOutOfRange {
        edge: (VertexId, VertexId),
        num_vertices: usize,
    },
    /// An inserted edge already exists in the graph.
    InsertExisting { edge: (VertexId, VertexId) },
    /// A deleted edge does not exist in the graph.
    DeleteMissing { edge: (VertexId, VertexId) },
    /// An edge is a self-loop.
    SelfLoop { vertex: VertexId },
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VertexOutOfRange { edge, num_vertices } => {
                write!(
                    f,
                    "edge {edge:?} references vertex outside 0..{num_vertices}"
                )
            }
            Self::InsertExisting { edge } => write!(f, "insertion of existing edge {edge:?}"),
            Self::DeleteMissing { edge } => write!(f, "deletion of missing edge {edge:?}"),
            Self::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
        }
    }
}

impl std::error::Error for EditError {}

impl EditBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw lists, canonicalizing and deduplicating.
    ///
    /// An edge present in both lists is dropped from both: on a graph where
    /// the batch validates, "delete e then insert e" (or the reverse) is a
    /// net no-op for the neighbor sets, and the paper's uniform-edit model
    /// never produces such pairs.
    pub fn from_lists(
        insertions: impl IntoIterator<Item = (VertexId, VertexId)>,
        deletions: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        let mut ins: Vec<_> = insertions
            .into_iter()
            .map(|(u, v)| canonical(u, v))
            .collect();
        let mut del: Vec<_> = deletions
            .into_iter()
            .map(|(u, v)| canonical(u, v))
            .collect();
        ins.sort_unstable();
        ins.dedup();
        del.sort_unstable();
        del.dedup();
        // Drop edges present in both lists (sorted set intersection).
        let ins_set: crate::FxHashSet<_> = ins.iter().copied().collect();
        let both: crate::FxHashSet<_> = del
            .iter()
            .copied()
            .filter(|e| ins_set.contains(e))
            .collect();
        if !both.is_empty() {
            ins.retain(|e| !both.contains(e));
            del.retain(|e| !both.contains(e));
        }
        Self {
            insertions: ins,
            deletions: del,
        }
    }

    /// Add one insertion (non-canonical input accepted).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        let e = canonical(u, v);
        if let Err(p) = self.insertions.binary_search(&e) {
            self.insertions.insert(p, e);
        }
        self
    }

    /// Add one deletion (non-canonical input accepted).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        let e = canonical(u, v);
        if let Err(p) = self.deletions.binary_search(&e) {
            self.deletions.insert(p, e);
        }
        self
    }

    /// Canonical sorted insertions.
    pub fn insertions(&self) -> &[(VertexId, VertexId)] {
        &self.insertions
    }

    /// Canonical sorted deletions.
    pub fn deletions(&self) -> &[(VertexId, VertexId)] {
        &self.deletions
    }

    /// Total number of edit operations.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True if the batch performs no edits.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Check the batch is applicable to `g`: inserted edges absent, deleted
    /// edges present, all endpoints in range, no self-loops.
    pub fn validate(&self, g: &AdjacencyGraph) -> Result<(), EditError> {
        let n = g.num_vertices();
        for &(u, v) in self.insertions.iter().chain(&self.deletions) {
            if u == v {
                return Err(EditError::SelfLoop { vertex: u });
            }
            if (u as usize) >= n || (v as usize) >= n {
                return Err(EditError::VertexOutOfRange {
                    edge: (u, v),
                    num_vertices: n,
                });
            }
        }
        for &(u, v) in &self.insertions {
            if g.has_edge(u, v) {
                return Err(EditError::InsertExisting { edge: (u, v) });
            }
        }
        for &(u, v) in &self.deletions {
            if !g.has_edge(u, v) {
                return Err(EditError::DeleteMissing { edge: (u, v) });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_canonicalizes_and_dedupes() {
        let b = EditBatch::from_lists([(3, 1), (1, 3), (0, 2)], [(5, 4)]);
        assert_eq!(b.insertions(), &[(0, 2), (1, 3)]);
        assert_eq!(b.deletions(), &[(4, 5)]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn conflicting_edge_cancels() {
        let b = EditBatch::from_lists([(0, 1), (2, 3)], [(1, 0)]);
        assert_eq!(b.insertions(), &[(2, 3)]);
        assert!(b.deletions().is_empty());
    }

    #[test]
    fn builder_methods_keep_sorted() {
        let mut b = EditBatch::new();
        b.insert(5, 2).insert(1, 0).delete(9, 3);
        assert_eq!(b.insertions(), &[(0, 1), (2, 5)]);
        assert_eq!(b.deletions(), &[(3, 9)]);
        b.insert(5, 2); // duplicate is a no-op
        assert_eq!(b.insertions().len(), 2);
    }

    #[test]
    fn validate_accepts_good_batch() {
        let g = AdjacencyGraph::from_edges(4, [(0, 1), (1, 2)]);
        let b = EditBatch::from_lists([(0, 3)], [(1, 2)]);
        assert!(b.validate(&g).is_ok());
    }

    #[test]
    fn validate_rejects_existing_insert() {
        let g = AdjacencyGraph::from_edges(3, [(0, 1)]);
        let b = EditBatch::from_lists([(1, 0)], []);
        assert_eq!(
            b.validate(&g),
            Err(EditError::InsertExisting { edge: (0, 1) })
        );
    }

    #[test]
    fn validate_rejects_missing_delete() {
        let g = AdjacencyGraph::from_edges(3, [(0, 1)]);
        let b = EditBatch::from_lists([], [(1, 2)]);
        assert_eq!(
            b.validate(&g),
            Err(EditError::DeleteMissing { edge: (1, 2) })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_and_self_loop() {
        let g = AdjacencyGraph::from_edges(3, [(0, 1)]);
        let b = EditBatch::from_lists([(0, 7)], []);
        assert!(matches!(
            b.validate(&g),
            Err(EditError::VertexOutOfRange { .. })
        ));
        let b2 = EditBatch::from_lists([(2, 2)], []);
        assert!(matches!(
            b2.validate(&g),
            Err(EditError::SelfLoop { vertex: 2 })
        ));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = EditError::InsertExisting { edge: (1, 2) };
        assert!(e.to_string().contains("existing"));
    }
}
