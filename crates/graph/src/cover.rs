//! Community covers: the output vocabulary of overlapping detection.
//!
//! A *cover* is a set of communities, each a set of vertices; unlike a
//! partition, communities may overlap and some vertices may be uncovered.
//! Generators attach ground-truth covers, detectors emit detected covers,
//! and metrics compare the two.

use crate::{FxHashSet, VertexId};

/// A set of (possibly overlapping) communities.
///
/// Canonical form: every community is sorted ascending and non-empty;
/// communities themselves are sorted by (first member, length, content) so
/// two equal covers compare equal structurally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cover {
    communities: Vec<Vec<VertexId>>,
}

impl Cover {
    /// Build from raw community lists; members are sorted and deduplicated,
    /// empty communities dropped, duplicate communities merged.
    pub fn new(communities: impl IntoIterator<Item = Vec<VertexId>>) -> Self {
        let mut cs: Vec<Vec<VertexId>> = communities
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c.dedup();
                c
            })
            .filter(|c| !c.is_empty())
            .collect();
        cs.sort();
        cs.dedup();
        Self { communities: cs }
    }

    /// A disjoint cover from per-vertex labels (e.g. connected-component
    /// output); every vertex is covered by exactly one community.
    pub fn from_partition_labels(labels: &[VertexId]) -> Self {
        let mut by_label: crate::FxHashMap<VertexId, Vec<VertexId>> = Default::default();
        for (v, &l) in labels.iter().enumerate() {
            by_label.entry(l).or_default().push(v as VertexId);
        }
        Self::new(by_label.into_values())
    }

    /// The communities, canonical order.
    pub fn communities(&self) -> &[Vec<VertexId>] {
        &self.communities
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True if there are no communities.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Community sizes, in canonical community order.
    pub fn sizes(&self) -> Vec<usize> {
        self.communities.iter().map(Vec::len).collect()
    }

    /// Per-vertex list of community indices, for `n` vertices.
    pub fn memberships(&self, n: usize) -> Vec<Vec<u32>> {
        let mut m = vec![Vec::new(); n];
        for (ci, c) in self.communities.iter().enumerate() {
            for &v in c {
                debug_assert!((v as usize) < n, "vertex {v} outside 0..{n}");
                m[v as usize].push(ci as u32);
            }
        }
        m
    }

    /// Vertices belonging to at least one community.
    pub fn covered_vertices(&self) -> FxHashSet<VertexId> {
        self.communities.iter().flatten().copied().collect()
    }

    /// Number of vertices in ≥ 2 communities.
    pub fn num_overlapping(&self, n: usize) -> usize {
        self.memberships(n).iter().filter(|m| m.len() >= 2).count()
    }

    /// Largest community size (0 if empty).
    pub fn max_size(&self) -> usize {
        self.communities.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total membership count (Σ community sizes).
    pub fn total_memberships(&self) -> usize {
        self.communities.iter().map(Vec::len).sum()
    }
}

impl FromIterator<Vec<VertexId>> for Cover {
    fn from_iter<T: IntoIterator<Item = Vec<VertexId>>>(iter: T) -> Self {
        Self::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_input() {
        let c = Cover::new(vec![vec![3, 1, 1], vec![], vec![0, 2], vec![1, 3]]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.communities(), &[vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn from_partition_labels_round_trip() {
        let labels = vec![0, 0, 2, 2, 2];
        let c = Cover::from_partition_labels(&labels);
        assert_eq!(c.communities(), &[vec![0, 1], vec![2, 3, 4]]);
        assert_eq!(c.num_overlapping(5), 0);
    }

    #[test]
    fn memberships_and_overlap() {
        let c = Cover::new(vec![vec![0, 1, 2], vec![2, 3]]);
        let m = c.memberships(5);
        assert_eq!(m[2], vec![0, 1]);
        assert_eq!(m[4], Vec::<u32>::new());
        assert_eq!(c.num_overlapping(5), 1);
        assert_eq!(c.covered_vertices().len(), 4);
        assert_eq!(c.total_memberships(), 5);
        assert_eq!(c.max_size(), 3);
    }

    #[test]
    fn equal_covers_compare_equal_regardless_of_order() {
        let a = Cover::new(vec![vec![1, 0], vec![2, 3]]);
        let b = Cover::new(vec![vec![3, 2], vec![0, 1]]);
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_reported() {
        let c = Cover::new(vec![vec![0], vec![1, 2, 3]]);
        assert_eq!(c.sizes(), vec![1, 3]);
    }
}
