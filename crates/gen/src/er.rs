//! Erdős–Rényi `G(n, m)` graphs.
//!
//! Null-model graphs for tests and for the complexity experiments of §IV-D,
//! whose analysis assumes "no prior distribution ... about the degrees of
//! vertices" — i.e. exactly the uniform-random-edge model.

use rslpa_graph::rng::DetRng;
use rslpa_graph::{AdjacencyGraph, VertexId};

/// A uniform random graph with `n` vertices and exactly `m` distinct edges.
///
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> AdjacencyGraph {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "m = {m} exceeds {possible} possible edges");
    let mut g = AdjacencyGraph::new(n);
    let mut rng = DetRng::new(seed);
    if n < 2 {
        return g;
    }
    // Rejection sampling is fine while m is a small fraction of possible;
    // switch to dense sampling (shuffle of all pairs) when m is large.
    if m * 3 < possible {
        let mut placed = 0usize;
        while placed < m {
            let u = rng.bounded(n as u64) as VertexId;
            let v = rng.bounded(n as u64) as VertexId;
            if u != v && g.insert_edge(u, v) {
                placed += 1;
            }
        }
    } else {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(possible);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                pairs.push((u, v));
            }
        }
        rng.shuffle(&mut pairs);
        for &(u, v) in &pairs[..m] {
            g.insert_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 250, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
        g.check_invariants().unwrap();
    }

    #[test]
    fn dense_path_used_near_complete() {
        let g = erdos_renyi(20, 180, 2); // 190 possible
        assert_eq!(g.num_edges(), 180);
        g.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(erdos_renyi(50, 100, 3), erdos_renyi(50, 100, 3));
        assert_ne!(erdos_renyi(50, 100, 3), erdos_renyi(50, 100, 4));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(erdos_renyi(0, 0, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 0, 1).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_edges_panics() {
        let _ = erdos_renyi(4, 7, 1);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(200, 2000, 5); // expected degree 20
        let max = g.max_degree();
        assert!(
            (10..=40).contains(&max.min(40)),
            "max degree {max} implausible for ER"
        );
    }
}
